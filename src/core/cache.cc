#include "core/cache.h"

#include <algorithm>
#include <cstring>

namespace uolap::core {

namespace {
bool IsPowerOfTwo(uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }
}  // namespace

SetAssociativeCache::SetAssociativeCache(uint64_t num_sets, uint32_t ways)
    : num_sets_(num_sets),
      ways_(ways),
      pow2_sets_(IsPowerOfTwo(num_sets)),
      set_mask_(num_sets - 1) {
  UOLAP_CHECK_MSG(num_sets >= 1, "num_sets must be positive");
  UOLAP_CHECK(ways >= 1);
  if (!pow2_sets_) {
    uint32_t shift = 0;
    while (((num_sets_ >> shift) & 1) == 0) ++shift;
    odd_shift_ = shift;
    odd_ = num_sets_ >> shift;
    low_mask_ = (1ull << shift) - 1;
    // floor(2^64 / odd) + 1; exact quotient via MulHi for every
    // q < 2^64 / e where e = magic * odd - 2^64 (Granlund–Montgomery).
    // Keys are line addresses (< 2^58) or page numbers, so requiring the
    // bound to cover 2^58 is sufficient; fall back to a divide otherwise.
    odd_magic_ = ~0ull / odd_ + 1;
    const unsigned __int128 e =
        static_cast<unsigned __int128>(odd_magic_) * odd_ -
        (static_cast<unsigned __int128>(1) << 64);
    odd_fast_ =
        e != 0 && ((static_cast<unsigned __int128>(1) << 64) / e) >=
                      (static_cast<unsigned __int128>(1) << 58);
  }
  const uint64_t n = num_sets_ * ways_;
  // The front-slot array stores global way indices as uint32_t.
  UOLAP_CHECK_MSG(n <= UINT32_MAX, "cache geometry exceeds front-slot range");
  recs_ = CallocArray<WayRec>(n);
  mru_ = CallocArray<uint32_t>(num_sets_);
  for (uint64_t s = 0; s < num_sets_; ++s) {
    mru_[s] = static_cast<uint32_t>(s * ways_);
  }
}

CacheAccessResult SetAssociativeCache::InsertAt(uint64_t set, uint64_t key,
                                                bool dirty) {
  CacheAccessResult result;
  // The victim is the way with the minimum timestamp, first-wins on ties:
  // invalid ways carry stamp 0 and so are picked (in way order) before any
  // valid way; otherwise this is true-LRU.
  const uint64_t base = set * ways_;
  uint64_t victim = base;
  uint64_t victim_ts = recs_[base].ts;
  for (uint32_t w = 1; w < ways_; ++w) {
    if (recs_[base + w].ts < victim_ts) {
      victim = base + w;
      victim_ts = recs_[base + w].ts;
    }
  }
  const uint64_t victim_tag = recs_[victim].tag & kTagMask;
  if (victim_tag != 0) {
    result.evicted = true;
    result.evicted_dirty = (recs_[victim].tag & kDirtyBit) != 0;
    result.evicted_key = victim_tag - 1;
  }
  recs_[victim].tag = (key + 1) | (dirty ? kDirtyBit : 0);
  recs_[victim].ts = ++clock_;
  mru_[set] = static_cast<uint32_t>(victim);
  result.slot = victim;
  return result;
}

CacheAccessResult SetAssociativeCache::Insert(uint64_t key, bool dirty) {
  const uint64_t set = SetIndex(key);
  const int64_t i = FindInSet(set, key + 1);
  if (i >= 0) {
    const uint64_t u = static_cast<uint64_t>(i);
    CacheAccessResult result;
    result.hit = true;
    if (dirty) recs_[u].tag |= kDirtyBit;
    recs_[u].ts = ++clock_;
    mru_[set] = static_cast<uint32_t>(u);
    result.slot = u;
    return result;
  }
  return InsertAt(set, key, dirty);
}

CacheAccessResult SetAssociativeCache::InsertAbsent(uint64_t key,
                                                    bool dirty) {
  UOLAP_DCHECK(Find(key) < 0);
  return InsertAt(SetIndex(key), key, dirty);
}

bool SetAssociativeCache::Invalidate(uint64_t key, bool* was_dirty) {
  const int64_t i = Find(key);
  if (i < 0) {
    if (was_dirty != nullptr) *was_dirty = false;
    return false;
  }
  const uint64_t u = static_cast<uint64_t>(i);
  if (was_dirty != nullptr) *was_dirty = (recs_[u].tag & kDirtyBit) != 0;
  recs_[u].tag = 0;
  recs_[u].ts = 0;
  return true;
}

void SetAssociativeCache::Clear() {
  const uint64_t n = num_sets_ * ways_;
  std::memset(recs_.get(), 0, n * sizeof(WayRec));
  for (uint64_t s = 0; s < num_sets_; ++s) {
    mru_[s] = static_cast<uint32_t>(s * ways_);
  }
  clock_ = 0;
}

}  // namespace uolap::core
