#include "core/roofline.h"

#include <algorithm>
#include <cstdio>

namespace uolap::core {

RooflinePoint ComputeRoofline(const ProfileResult& result,
                              const MachineConfig& machine) {
  RooflinePoint p;
  const double instr = static_cast<double>(result.instructions);
  const double bytes = result.dram_bytes;
  const double bpc = machine.SeqBytesPerCycle();
  const double width = machine.exec.issue_width;

  p.ridge_intensity = width / bpc;
  if (bytes <= 0) {
    // No DRAM traffic at all: pure compute, infinite intensity.
    p.intensity = p.ridge_intensity * 1e6;
  } else {
    p.intensity = instr / bytes;
  }
  p.achieved_ipc = result.ipc;
  p.roof_ipc = std::min(width, p.intensity * bpc);
  p.memory_bound = p.intensity < p.ridge_intensity;
  p.roof_fraction = p.roof_ipc > 0 ? p.achieved_ipc / p.roof_ipc : 0.0;
  return p;
}

std::string RooflineVerdict(const RooflinePoint& p) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%s roof (intensity %.2f instr/B, ridge %.2f): achieving "
                "%.2f of %.2f IPC (%.0f%%%s)",
                p.memory_bound ? "memory" : "compute", p.intensity,
                p.ridge_intensity, p.achieved_ipc, p.roof_ipc,
                100.0 * p.roof_fraction,
                p.roof_fraction < 0.6 ? ", latency-bound below the roof"
                                      : "");
  return buf;
}

}  // namespace uolap::core
