"""Layering rule family (LAY-*).

Enforces the module dependency DAG over the *real* include graph
(every ``#include "..."`` in the tree, resolved against src/), instead
of the per-line directory regexes the old contract lint used:

    common -> core -> {audit, obs, tpch, storage} -> engine
           -> engines -> harness -> server

plus file-level cycle detection — a cycle is a layering bug even when
every individual edge stays inside one module.

The DAG below is the authoritative statement of which module may
include which (a module always may include itself and the standard
library).  ``harness`` and the leaf dirs (bench/, examples/, tests/)
may include anything.
"""

import os

from engine import Rule

# module -> allowed include top-level prefixes (relative to src/).
LAYERING = {
    "src/common": [],
    "src/core": ["common"],
    "src/audit": ["common", "core"],
    "src/obs": ["common", "core", "audit"],
    "src/tpch": ["common"],
    "src/storage": ["common", "core", "tpch"],
    # engine publishes dispatch counters into the obs metrics registry.
    "src/engine": ["common", "core", "storage", "tpch", "obs"],
    "src/engines": ["common", "core", "storage", "tpch", "engine",
                    "engines"],
    # The serving runtime sits above the engines and observability but
    # below the harness (it must stay embeddable without the CLI glue).
    "src/server": ["common", "core", "audit", "obs", "tpch", "storage",
                   "engine"],
    "src/harness": ["common", "core", "audit", "obs", "tpch", "storage",
                    "engine", "engines", "server", "harness"],
}


def _module_of(relpath):
    for m in LAYERING:
        if relpath.startswith(m + "/"):
            return m
    return None


def check_dag(ctx, rule, sf):
    module = _module_of(sf.relpath)
    if module is None:
        return
    allowed = LAYERING[module]
    own_prefix = module[len("src/"):]
    for inc in sf.model.includes:
        if inc.angled:
            continue
        top = inc.path.split("/")[0]
        if inc.path.startswith(own_prefix + "/") or top == own_prefix:
            continue
        if top not in allowed:
            ctx.report(rule, sf, inc.line,
                       f"{module} must not include \"{inc.path}\" "
                       f"(allowed: {', '.join(allowed) or 'nothing'})")


def _resolve_include(ctx, from_relpath, inc_path):
    """Repo-relative path of a quoted include, or None for system/not
    found.  The tree compiles with -I src/, so quoted includes resolve
    against src/ first, then the includer's own directory."""
    cand = "src/" + inc_path
    if cand in ctx.files:
        return cand
    sibling = os.path.normpath(
        os.path.join(os.path.dirname(from_relpath), inc_path)).replace(
            os.sep, "/")
    if sibling in ctx.files:
        return sibling
    if inc_path in ctx.files:
        return inc_path
    return None


def check_cycles(ctx, rule):
    """File-level include-graph cycle detection (DFS, three colours).
    Reports each cycle once, anchored at its lexicographically smallest
    file, with the full cycle spelled out."""
    graph = {}
    inc_lines = {}
    for relpath, sf in ctx.files.items():
        edges = []
        for inc in sf.model.includes:
            if inc.angled:
                continue
            target = _resolve_include(ctx, relpath, inc.path)
            if target is not None and target != relpath:
                edges.append(target)
                inc_lines[(relpath, target)] = inc.line
        graph[relpath] = edges

    WHITE, GREY, BLACK = 0, 1, 2
    colour = {node: WHITE for node in graph}
    seen_cycles = set()

    def visit(node, stack):
        colour[node] = GREY
        stack.append(node)
        for nxt in graph.get(node, ()):
            if colour.get(nxt, WHITE) == GREY:
                cycle = stack[stack.index(nxt):] + [nxt]
                anchor = min(cycle[:-1])
                key = tuple(sorted(set(cycle)))
                if key not in seen_cycles:
                    seen_cycles.add(key)
                    ai = cycle.index(anchor)
                    rotated = cycle[ai:-1] + cycle[:ai] + [anchor]
                    line = inc_lines.get((rotated[0], rotated[1]), 1)
                    ctx.report(rule, anchor, line,
                               "include cycle: " + " -> ".join(rotated))
            elif colour.get(nxt, WHITE) == WHITE:
                visit(nxt, stack)
        stack.pop()
        colour[node] = BLACK

    for node in sorted(graph):
        if colour[node] == WHITE:
            visit(node, [])


RULES = [
    Rule("LAY-DAG", "error", "layering",
         "module includes must follow the dependency DAG",
         check_dag),
    Rule("LAY-CYCLE", "error", "layering",
         "no cycles in the file-level include graph",
         check_cycles, scope="tree"),
]
