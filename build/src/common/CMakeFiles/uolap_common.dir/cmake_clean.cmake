file(REMOVE_RECURSE
  "CMakeFiles/uolap_common.dir/flags.cc.o"
  "CMakeFiles/uolap_common.dir/flags.cc.o.d"
  "CMakeFiles/uolap_common.dir/status.cc.o"
  "CMakeFiles/uolap_common.dir/status.cc.o.d"
  "CMakeFiles/uolap_common.dir/table_printer.cc.o"
  "CMakeFiles/uolap_common.dir/table_printer.cc.o.d"
  "libuolap_common.a"
  "libuolap_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uolap_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
