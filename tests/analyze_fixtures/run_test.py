#!/usr/bin/env python3
"""ctest driver for uolap-analyze (registered as analyze_fixture_test).

Runs the analyzer over the fixture corpus in this directory and asserts:

  1. the findings match expected.txt EXACTLY — rule IDs, file:line
     anchors, severities, and messages (so any behaviour drift in a rule
     is a visible diff, not a silent regression);
  2. the per-line suppression marker dropped exactly one finding
     (the allow(CON-STORAGE) site in src/storage/bad_storage.cc);
  3. every rule family (DET-*, LAY-*, CON-*) is represented;
  4. the baseline mechanism round-trips: a baseline written from the
     current findings grandfathers all of them (exit 0), and removing
     one entry resurrects exactly that finding (exit 1);
  5. the machine-readable JSON findings format is well-formed and
     consistent with the text output;
  6. exit codes: 1 with findings, 0 on a clean subtree.
"""

import json
import os
import subprocess
import sys
import tempfile

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(os.path.dirname(HERE))
ANALYZER = os.path.join(REPO, "scripts", "analyze")

FAILURES = []


def check(cond, what):
    if cond:
        print(f"ok: {what}")
    else:
        print(f"FAIL: {what}")
        FAILURES.append(what)


def run(*extra):
    cmd = [sys.executable, ANALYZER, "src", "bench",
           "--root", HERE] + list(extra)
    return subprocess.run(cmd, capture_output=True, text=True)


def main():
    with open(os.path.join(HERE, "expected.txt"), encoding="utf-8") as f:
        expected = f.read().splitlines()

    tmp = tempfile.mkdtemp(prefix="uolap_analyze_test_")
    json_path = os.path.join(tmp, "findings.json")

    # 1. Exact-match findings + exit code.
    proc = run("--json", json_path)
    got = proc.stdout.splitlines()
    summary = got[-1] if got else ""
    findings = got[:-1]
    check(proc.returncode == 1, "exit code 1 with findings")
    if findings != expected:
        import difflib
        sys.stdout.writelines(difflib.unified_diff(
            expected, findings, "expected.txt", "analyzer output",
            lineterm=""))
        print()
    check(findings == expected,
          f"findings match expected.txt ({len(expected)} lines)")

    # 2. The reasoned suppression dropped exactly one finding.
    check("1 suppressed" in summary,
          f"suppression count in summary: {summary!r}")
    check(not any("bad_storage.cc:17" in line for line in findings),
          "suppressed CON-STORAGE site is absent from findings")

    # 3. Every rule family is exercised by the corpus.
    for family_prefix in ("DET-", "LAY-", "CON-"):
        check(any(f"[{family_prefix}" in line for line in findings),
              f"family {family_prefix}* represented")
    # ... and every individual rule that has a bad fixture.
    for rule_id in ("DET-RNG", "DET-WALLCLOCK", "DET-UNORDERED-SIM",
                    "DET-UNORDERED-ITER", "DET-PTR-ORDER",
                    "DET-FLOAT-ACCUM", "LAY-DAG", "LAY-CYCLE",
                    "CON-REGION-RAW", "CON-REGION-PAIR",
                    "CON-METRIC-NAME", "CON-TESTONLY",
                    "CON-TESTONLY-REF", "CON-GUARD", "CON-USING-NS",
                    "CON-INCLUDE-ORDER", "CON-STORAGE",
                    "CON-STATUS-DISCARD", "CON-IO-CHECKED"):
        check(any(f"[{rule_id}]" in line for line in findings),
              f"rule {rule_id} fires on its fixture")

    # 5. JSON findings format is consistent with the text output.
    with open(json_path, encoding="utf-8") as f:
        doc = json.load(f)
    check(doc.get("format") == "uolap-analyze-findings v1",
          "JSON format tag")
    check(len(doc["findings"]) == len(findings),
          "JSON finding count matches text output")
    check(doc["summary"]["suppressed"] == 1, "JSON suppressed count")
    by_text = {(f["path"], f["line"], f["rule"])
               for f in doc["findings"]}
    check(("src/core/loop.h", 4, "LAY-CYCLE") in by_text,
          "JSON carries the cycle anchor")

    # 4. Baseline round-trip: everything grandfathered -> exit 0.
    base = os.path.join(tmp, "baseline.json")
    wrote = run("--write-baseline", base)
    check(wrote.returncode == 0, "--write-baseline exits 0")
    clean = run("--baseline", base)
    check(clean.returncode == 0,
          "fully-grandfathered run exits 0")
    check("0 new finding(s)" in clean.stdout,
          "fully-grandfathered run reports 0 new")

    # Removing one entry resurrects exactly that finding (the baseline
    # matches on content, so this simulates 'a new violation appears').
    with open(base, encoding="utf-8") as f:
        basedoc = json.load(f)
    removed = None
    kept = []
    for entry in basedoc["findings"]:
        if removed is None and entry["rule"] == "DET-UNORDERED-ITER":
            removed = entry
        else:
            kept.append(entry)
    basedoc["findings"] = kept
    with open(base, "w", encoding="utf-8") as f:
        json.dump(basedoc, f)
    partial = run("--baseline", base)
    check(partial.returncode == 1,
          "one un-baselined finding fails the run")
    check("1 new finding(s)" in partial.stdout,
          "exactly one new finding reported")
    check(removed is not None and
          f"[{removed['rule']}]" in partial.stdout,
          "the resurrected finding is the removed entry's rule")

    # 6. A clean subtree exits 0 (only the clean common/ fixture).
    clean_sub = subprocess.run(
        [sys.executable, ANALYZER, "src/common", "--root", HERE],
        capture_output=True, text=True)
    check(clean_sub.returncode == 0, "clean subtree exits 0")

    print(f"\n{len(FAILURES)} failure(s)")
    return 1 if FAILURES else 0


if __name__ == "__main__":
    sys.exit(main())
