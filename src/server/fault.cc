#include "server/fault.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/rng.h"

namespace uolap::server {

namespace {

/// Maps a hash to [0, 1) with the same 53-bit recipe as Rng::NextDouble,
/// so fault probabilities are exact dyadic thresholds.
double ToUnit(uint64_t x) {
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

/// Domain-separation tags: failure and slowdown draws must be
/// independent streams even for equal (tenant, key) inputs.
constexpr uint64_t kFailTag = 0x4641494C5F544147ULL;  // "FAIL_TAG"
constexpr uint64_t kSlowTag = 0x534C4F575F544147ULL;  // "SLOW_TAG"

uint64_t Chain(uint64_t seed, uint64_t tag, uint64_t a, uint64_t b) {
  return Mix64(Mix64(Mix64(seed ^ tag) + a) + b);
}

}  // namespace

std::string FaultPlan::ToString() const {
  if (!enabled()) return "";
  char buf[160];
  std::snprintf(buf, sizeof(buf), "seed=%llu,fail=%g,slow=%g,x=%g,epoch=%g",
                static_cast<unsigned long long>(seed), fail_prob, slow_prob,
                slow_factor, epoch_ms);
  return buf;
}

StatusOr<FaultPlan> ParseFaultPlan(std::string_view text) {
  FaultPlan plan;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t comma = text.find(',', pos);
    if (comma == std::string_view::npos) comma = text.size();
    std::string_view item = text.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;
    size_t eq = item.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument("fault plan item lacks '=': " +
                                     std::string(item));
    }
    std::string_view key = item.substr(0, eq);
    std::string value(item.substr(eq + 1));
    char* end = nullptr;
    if (key == "seed") {
      // strtoull silently wraps "-1" to 2^64-1; demand plain digits.
      if (!value.empty() && (value[0] == '-' || value[0] == '+')) {
        return Status::InvalidArgument("fault plan seed must be unsigned: " +
                                       std::string(item));
      }
      plan.seed = std::strtoull(value.c_str(), &end, 10);
    } else {
      const double v = std::strtod(value.c_str(), &end);
      if (key == "fail") {
        plan.fail_prob = v;
      } else if (key == "slow") {
        plan.slow_prob = v;
      } else if (key == "x") {
        plan.slow_factor = v;
      } else if (key == "epoch") {
        plan.epoch_ms = v;
      } else {
        return Status::InvalidArgument("unknown fault plan key: " +
                                       std::string(key));
      }
    }
    if (end == nullptr || *end != '\0' || value.empty()) {
      return Status::InvalidArgument("bad fault plan value: " +
                                     std::string(item));
    }
  }
  // The negated comparisons also reject NaN, which would sail through
  // `prob < 0 || prob > 1` and poison every fault draw.
  if (!(plan.fail_prob >= 0 && plan.fail_prob <= 1) ||
      !(plan.slow_prob >= 0 && plan.slow_prob <= 1)) {
    return Status::InvalidArgument(
        "fault plan probabilities must be in [0,1]");
  }
  if (!std::isfinite(plan.slow_factor) || plan.slow_factor < 1) {
    return Status::InvalidArgument(
        "fault plan slowdown x must be finite and >= 1");
  }
  if (!std::isfinite(plan.epoch_ms) || !(plan.epoch_ms > 0)) {
    return Status::InvalidArgument("fault plan epoch must be > 0 ms");
  }
  if ((plan.fail_prob > 0 || plan.slow_prob > 0) && plan.seed == 0) {
    return Status::InvalidArgument(
        "fault plan with probabilities needs seed=<nonzero>");
  }
  return plan;
}

FaultDecision EvalFault(const FaultPlan& plan, int tenant,
                        uint64_t fault_epoch, uint64_t attempt_key) {
  FaultDecision d;
  if (!plan.enabled()) return d;
  const uint64_t t = static_cast<uint64_t>(tenant);
  if (plan.fail_prob > 0 &&
      ToUnit(Chain(plan.seed, kFailTag, t, attempt_key)) < plan.fail_prob) {
    d.fail = true;
  }
  if (plan.slow_prob > 0 &&
      ToUnit(Chain(plan.seed, kSlowTag, t, fault_epoch)) < plan.slow_prob) {
    d.slow_factor = plan.slow_factor;
  }
  return d;
}

}  // namespace uolap::server
