# Empty compiler generated dependencies file for bench_fig26_prefetchers.
# This may be replaced when dependencies are built.
