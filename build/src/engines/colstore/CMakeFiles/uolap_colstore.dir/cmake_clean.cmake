file(REMOVE_RECURSE
  "CMakeFiles/uolap_colstore.dir/colstore_engine.cc.o"
  "CMakeFiles/uolap_colstore.dir/colstore_engine.cc.o.d"
  "libuolap_colstore.a"
  "libuolap_colstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uolap_colstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
