// Tectorwise TPC-H Q1 and Q6.

#include <algorithm>
#include <map>
#include <memory>
#include <vector>

#include "common/macros.h"
#include "engines/tectorwise/primitives.h"
#include "engines/tectorwise/tw_engine.h"

namespace uolap::tectorwise {

using engine::AggHashTable;
using engine::PartitionRange;
using engine::Q1Result;
using engine::Q1Row;
using engine::RowRange;
using engine::Workers;
using tpch::Money;

Q1Result TectorwiseEngine::Q1(Workers& w) const {
  const auto& l = db_.lineitem;
  const size_t n = l.size();
  const tpch::Date cut = engine::Q1ShipdateCut();

  // Per-worker scratch and aggregation tables, allocated serially up
  // front (simulated addresses must not depend on thread scheduling).
  struct Scratch {
    std::vector<uint32_t> sel;
    std::vector<int64_t> keys, disc_price, charge;
    AggHashTable<5> agg;
    Scratch()
        : sel(kVecSize), keys(kVecSize), disc_price(kVecSize),
          charge(kVecSize), agg(8) {}
  };
  std::vector<std::unique_ptr<Scratch>> scratch;
  for (size_t t = 0; t < w.count(); ++t) {
    scratch.push_back(std::make_unique<Scratch>());
  }
  w.ForEach([&](size_t t) {
    core::Core& core = *w.cores[t];
    core::ScopedRegion agg_region(core, "agg");
    const RowRange r = PartitionRange(n, t, w.count());
    core.SetCodeRegion({"tw/q1", 6144});
    VecCtx ctx{&core, simd_};

    std::vector<uint32_t>& sel = scratch[t]->sel;
    std::vector<int64_t>& keys = scratch[t]->keys;
    std::vector<int64_t>& disc_price = scratch[t]->disc_price;
    std::vector<int64_t>& charge = scratch[t]->charge;
    AggHashTable<5>& agg = scratch[t]->agg;

    for (size_t base = r.begin; base < r.end; base += kVecSize) {
      const size_t m = std::min(kVecSize, r.end - base);
      // Filter primitive: shipdate <= cut (~99% selectivity, easy branch).
      const size_t ms = SelPredFull(
          ctx, engine::branch_site::kSelectionP1, l.shipdate.data() + base,
          m, sel.data(), [cut](tpch::Date d) { return d <= cut; });

      // Key and arithmetic primitives over the selection vector. The
      // selection vector and the dense outputs are sequential (batched);
      // the column reads under the selection are gathers (per element).
      detail::ChargeCallOverhead(ctx);
      detail::TouchVecLoad(ctx, sel.data(), ms);
      for (size_t k = 0; k < ms; ++k) {
        const uint32_t i = sel[k];
        const int64_t flag = detail::LoadElem(ctx, &l.returnflag[base + i]);
        const int64_t status =
            detail::LoadElem(ctx, &l.linestatus[base + i]);
        keys[k] = (flag << 8) | status;
      }
      detail::TouchVecStore(ctx, keys.data(), ms);
      if (ctx.simd) {
        detail::ChargeSimdLoop(ctx, ms, 5);
      } else {
        detail::ChargeScalarLoop(ctx, ms, 3);
      }

      detail::ChargeCallOverhead(ctx);
      detail::TouchVecLoad(ctx, sel.data(), ms);
      for (size_t k = 0; k < ms; ++k) {
        const uint32_t i = sel[k];
        const Money ep = detail::LoadElem(ctx, &l.extendedprice[base + i]);
        const int64_t d = detail::LoadElem(ctx, &l.discount[base + i]);
        const int64_t tax = detail::LoadElem(ctx, &l.tax[base + i]);
        const Money dp = tpch::DiscountedPrice(ep, d);
        disc_price[k] = dp;
        charge[k] = dp * (100 + tax) / 100;
      }
      detail::TouchVecStore(ctx, disc_price.data(), ms);
      detail::TouchVecStore(ctx, charge.data(), ms);
      if (ctx.simd) {
        detail::ChargeSimdLoop(ctx, ms, 8);
      } else {
        core::InstrMix per;
        per.alu = 5;
        per.mul = 4;
        core.RetireN(per, ms);
      }

      // Aggregation: hash the key vector, then update the group slots.
      detail::TouchVecLoad(ctx, disc_price.data(), ms);
      detail::TouchVecLoad(ctx, charge.data(), ms);
      for (size_t k = 0; k < ms; ++k) {
        const uint32_t i = sel[k];
        auto* entry = agg.FindOrCreate(
            core, engine::branch_site::kAggChain, keys[k]);
        agg.Add(core, entry, 0, detail::LoadElem(ctx, &l.quantity[base + i]));
        agg.Add(core, entry, 1,
                detail::LoadElem(ctx, &l.extendedprice[base + i]));
        agg.Add(core, entry, 2, disc_price[k]);
        agg.Add(core, entry, 3, charge[k]);
        agg.Add(core, entry, 4, 1);
      }
      detail::ChargeScalarLoop(ctx, ms, 2);
    }
  });

  std::map<int64_t, Q1Row> merged;
  for (size_t t = 0; t < w.count(); ++t) {
    for (const auto& e : scratch[t]->agg.entries()) {
      Q1Row& row = merged[e.key];
      row.returnflag = static_cast<int8_t>(e.key >> 8);
      row.linestatus = static_cast<int8_t>(e.key & 0xFF);
      row.sum_qty += e.aggs[0];
      row.sum_base_price += e.aggs[1];
      row.sum_disc_price += e.aggs[2];
      row.sum_charge += e.aggs[3];
      row.count += e.aggs[4];
    }
  }

  Q1Result result;
  for (const auto& [key, row] : merged) result.rows.push_back(row);
  std::sort(result.rows.begin(), result.rows.end(),
            [](const Q1Row& a, const Q1Row& b) {
              return std::tie(a.returnflag, a.linestatus) <
                     std::tie(b.returnflag, b.linestatus);
            });
  return result;
}

int64_t TectorwiseEngine::GroupBy(Workers& w, int64_t num_groups) const {
  UOLAP_CHECK(num_groups >= 1);
  const auto& l = db_.lineitem;
  const size_t n = l.size();

  struct Scratch {
    AggHashTable<1> agg;
    std::vector<int64_t> keys, vals;
    explicit Scratch(size_t groups)
        : agg(groups), keys(kVecSize), vals(kVecSize) {}
  };
  std::vector<std::unique_ptr<Scratch>> scratch;
  for (size_t t = 0; t < w.count(); ++t) {
    const engine::RowRange r = PartitionRange(n, t, w.count());
    scratch.push_back(std::make_unique<Scratch>(static_cast<size_t>(
        std::min<int64_t>(num_groups, static_cast<int64_t>(r.size())) + 1)));
  }
  w.ForEach([&](size_t t) {
    core::Core& core = *w.cores[t];
    core::ScopedRegion groupby_region(core, "groupby");
    const engine::RowRange r = PartitionRange(n, t, w.count());
    core.SetCodeRegion({"tw/groupby", 4096});
    VecCtx ctx{&core, simd_};
    core.SetMlpHint(simd_ ? core::kMlpSimdGather : core::kMlpVectorProbe);

    AggHashTable<1>& agg = scratch[t]->agg;
    std::vector<int64_t>& keys = scratch[t]->keys;
    std::vector<int64_t>& vals = scratch[t]->vals;
    for (size_t base = r.begin; base < r.end; base += kVecSize) {
      const size_t m = std::min(kVecSize, r.end - base);
      // Hash primitive: key vector from l_orderkey. Inputs and outputs
      // are all dense sequential runs — fully batched.
      detail::ChargeCallOverhead(ctx);
      detail::TouchVecLoad(ctx, l.orderkey.data() + base, m);
      detail::TouchVecLoad(ctx, l.extendedprice.data() + base, m);
      for (size_t k = 0; k < m; ++k) {
        keys[k] = engine::groupby::GroupKey(l.orderkey[base + k], num_groups);
        vals[k] = l.extendedprice[base + k];
      }
      detail::TouchVecStore(ctx, keys.data(), m);
      detail::TouchVecStore(ctx, vals.data(), m);
      if (ctx.simd) {
        detail::ChargeSimdLoop(ctx, m, 7);
      } else {
        core::InstrMix per;
        per.mul = 4;
        per.alu = 4;
        core.RetireN(per, m);
      }
      // Grouped update loop.
      detail::TouchVecLoad(ctx, keys.data(), m);
      detail::TouchVecLoad(ctx, vals.data(), m);
      for (size_t k = 0; k < m; ++k) {
        auto* entry = agg.FindOrCreate(
            core, engine::branch_site::kGroupByChain, keys[k]);
        agg.Add(core, entry, 0, vals[k]);
      }
      detail::ChargeScalarLoop(ctx, m, 1);
    }
    core.SetMlpHint(core::kMlpDefault);
  });

  std::map<int64_t, int64_t> merged;
  for (size_t t = 0; t < w.count(); ++t) {
    for (const auto& e : scratch[t]->agg.entries()) merged[e.key] += e.aggs[0];
  }

  int64_t checksum = 0;
  for (const auto& [key, sum] : merged) {
    checksum = engine::groupby::Combine(checksum, key, sum);
  }
  return checksum;
}

Money TectorwiseEngine::Q6(Workers& w, const engine::Q6Params& p) const {
  const auto& l = db_.lineitem;
  const size_t n = l.size();

  struct Scratch {
    std::vector<uint32_t> sel1, sel2, sel3;
    Scratch() : sel1(kVecSize), sel2(kVecSize), sel3(kVecSize) {}
  };
  std::vector<Scratch> scratch(w.count());
  std::vector<Money> partial(w.count(), 0);
  w.ForEach([&](size_t t) {
    core::Core& core = *w.cores[t];
    core::ScopedRegion scan_region(core, "select");
    const RowRange r = PartitionRange(n, t, w.count());
    core.SetCodeRegion({p.predicated ? "tw/q6-predicated" : "tw/q6", 5120});
    VecCtx ctx{&core, simd_};

    std::vector<uint32_t>& sel1 = scratch[t].sel1;
    std::vector<uint32_t>& sel2 = scratch[t].sel2;
    std::vector<uint32_t>& sel3 = scratch[t].sel3;

    Money acc = 0;
    for (size_t base = r.begin; base < r.end; base += kVecSize) {
      const size_t m = std::min(kVecSize, r.end - base);
      size_t m1, m2, m3;
      const auto date_pred = [&p](tpch::Date d) {
        return d >= p.date_lo && d < p.date_hi;
      };
      const auto disc_pred = [&p](int64_t d) {
        return d >= p.discount_lo && d <= p.discount_hi;
      };
      const auto qty_pred = [&p](int64_t q) { return q < p.quantity_lim; };
      if (!p.predicated) {
        // Three branched primitives; the predictor sees the individual
        // selectivities (~14% / ~27% / ~46%) — the paper's Q6 story.
        m1 = SelPredFull(ctx, engine::branch_site::kQ6P1,
                         l.shipdate.data() + base, m, sel1.data(), date_pred,
                         /*alu_per_elem=*/2);
        m2 = SelPred(ctx, engine::branch_site::kQ6P2,
                     l.discount.data() + base, sel1.data(), m1, sel2.data(),
                     disc_pred, /*alu_per_elem=*/2);
        m3 = SelPred(ctx, engine::branch_site::kQ6P3,
                     l.quantity.data() + base, sel2.data(), m2, sel3.data(),
                     qty_pred);
      } else {
        m1 = SelPredPredicatedFull(ctx, l.shipdate.data() + base, m,
                                   sel1.data(), date_pred);
        m2 = SelPredPredicated(ctx, l.discount.data() + base, sel1.data(),
                               m1, sel2.data(), disc_pred);
        m3 = SelPredPredicated(ctx, l.quantity.data() + base, sel2.data(),
                               m2, sel3.data(), qty_pred);
      }
      if (m3 == 0) continue;
      // sum(extendedprice * discount) over the final selection vector.
      detail::ChargeCallOverhead(ctx);
      detail::TouchVecLoad(ctx, sel3.data(), m3);
      for (size_t k = 0; k < m3; ++k) {
        const uint32_t i = sel3[k];
        acc += detail::LoadElem(ctx, &l.extendedprice[base + i]) *
               detail::LoadElem(ctx, &l.discount[base + i]);
      }
      if (ctx.simd) {
        detail::ChargeSimdLoop(ctx, m3, 4, /*chain=*/1);
      } else {
        core::InstrMix per;
        per.mul = 1;
        per.alu = 2;
        per.chain_cycles = 1;
        core.RetireN(per, m3);
      }
    }
    partial[t] = acc;
  });
  Money total = 0;
  for (Money a : partial) total += a;
  return total;
}

}  // namespace uolap::tectorwise
