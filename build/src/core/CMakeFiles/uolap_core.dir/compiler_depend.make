# Empty compiler generated dependencies file for uolap_core.
# This may be replaced when dependencies are built.
