#include "core/branch_predictor.h"

#include "common/macros.h"

namespace uolap::core {

BranchPredictor::BranchPredictor(uint32_t table_bits, uint32_t history_bits) {
  UOLAP_CHECK(table_bits >= 4 && table_bits <= 24);
  UOLAP_CHECK(history_bits <= table_bits);
  table_.assign(1u << table_bits, 1);  // weakly not-taken
  table_mask_ = (1u << table_bits) - 1;
  history_mask_ = (1u << history_bits) - 1;
  // Align the history with the high bits of the index so that site ids
  // (which tend to be small integers) and history interfere the way gshare
  // intends.
  history_shift_ = table_bits - history_bits;
}

void BranchPredictor::Reset() {
  for (auto& c : table_) c = 1;
  history_ = 0;
  branches_ = 0;
  mispredicts_ = 0;
}

}  // namespace uolap::core
