#include "harness/thread_pool.h"

#include <cstdlib>

#include "common/macros.h"

namespace uolap::harness {

namespace {
/// True while this thread is inside a pool item; nested ParallelFor calls
/// from such a thread run inline (see class comment).
thread_local bool tls_in_pool_item = false;
}  // namespace

ThreadPool::ThreadPool(unsigned threads) : threads_(threads == 0 ? 1 : threads) {
  workers_.reserve(threads_ - 1);
  for (unsigned i = 1; i < threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  job_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool* pool = [] {
    unsigned n = 0;
    if (const char* env = std::getenv("UOLAP_THREADS")) {
      n = static_cast<unsigned>(std::strtoul(env, nullptr, 10));
    }
    if (n == 0) n = std::thread::hardware_concurrency();
    if (n == 0) n = 1;
    return new ThreadPool(n);
  }();
  return *pool;
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t)>& body) {
  if (n == 0) return;
  if (tls_in_pool_item || workers_.empty() || n == 1) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }
  UOLAP_DCHECK(n <= kIndexMask);
  std::lock_guard<std::mutex> caller_lock(caller_mu_);
  uint64_t epoch;
  {
    std::lock_guard<std::mutex> lock(mu_);
    epoch = ++job_epoch_;
    job_n_ = n;
    job_body_ = &body;
    done_ = 0;
    ticket_.store(epoch << kEpochShift, std::memory_order_release);
  }
  job_cv_.notify_all();
  DrainJob(epoch, n, &body);  // the caller participates
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this, n] { return done_ == n; });
    job_body_ = nullptr;
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t last_epoch = 0;
  while (true) {
    uint64_t epoch;
    size_t n;
    const std::function<void(size_t)>* body;
    {
      std::unique_lock<std::mutex> lock(mu_);
      job_cv_.wait(lock, [this, last_epoch] {
        return shutdown_ || job_epoch_ != last_epoch;
      });
      if (shutdown_) return;
      epoch = job_epoch_;
      n = job_n_;
      body = job_body_;
    }
    last_epoch = epoch;
    if (body != nullptr) DrainJob(epoch, n, body);
  }
}

void ThreadPool::DrainJob(uint64_t epoch, size_t n,
                          const std::function<void(size_t)>* body) {
  const uint64_t tag = epoch << kEpochShift;
  const bool was_in_item = tls_in_pool_item;
  tls_in_pool_item = true;
  size_t ran = 0;
  uint64_t t = ticket_.load(std::memory_order_acquire);
  while ((t & ~kIndexMask) == tag) {
    const uint64_t idx = t & kIndexMask;
    if (idx >= n) break;
    if (ticket_.compare_exchange_weak(t, tag | (idx + 1),
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
      (*body)(static_cast<size_t>(idx));
      ++ran;
      t = ticket_.load(std::memory_order_acquire);
    }
    // On CAS failure `t` was refreshed; the loop re-checks the epoch.
  }
  tls_in_pool_item = was_in_item;
  if (ran == 0) return;
  bool complete;
  {
    std::lock_guard<std::mutex> lock(mu_);
    done_ += ran;
    complete = done_ == n;
  }
  if (complete) done_cv_.notify_all();
}

}  // namespace uolap::harness
