// Compares the four OLAP systems of the paper on the same workloads:
// a commercial row store (DBMS R), its column-store extension (DBMS C),
// a compiled engine (Typer) and a vectorized engine (Tectorwise).
//
// This is the paper's Section 3/5 story in one program: the commercial
// systems retire orders of magnitude more instructions; the
// high-performance engines are fast but stall-bound.
//
//   ./build/examples/engine_comparison [--sf=0.1]

#include <cstdio>
#include <vector>

#include "common/flags.h"
#include "common/table_printer.h"
#include "core/machine.h"
#include "engines/colstore/colstore_engine.h"
#include "engines/rowstore/rowstore_engine.h"
#include "engines/tectorwise/tw_engine.h"
#include "engines/typer/typer_engine.h"
#include "tpch/dbgen.h"

int main(int argc, char** argv) {
  using namespace uolap;

  FlagSet flags;
  UOLAP_CHECK(flags.Parse(argc, argv).ok());
  const double sf = flags.GetDouble("sf", 0.1);

  tpch::DbGen generator(42);
  tpch::Database db = std::move(generator.Generate(sf)).value();

  typer::TyperEngine typer(db);
  tectorwise::TectorwiseEngine tw(db);
  rowstore::RowstoreEngine dbms_r(db);
  colstore::ColstoreEngine dbms_c(db);
  std::vector<engine::OlapEngine*> engines = {&dbms_r, &dbms_c, &typer, &tw};

  auto profile = [&](engine::OlapEngine& e, auto&& query) {
    core::Machine machine(core::MachineConfig::Broadwell(), 1);
    engine::Workers w(machine.core(0));
    query(e, w);
    machine.FinalizeAll();
    return machine.AnalyzeCore(0);
  };

  auto compare = [&](const char* title, auto&& query) {
    TablePrinter t(title);
    t.SetHeader({"system", "time (ms)", "instructions", "IPC", "stall %",
                 "GB/s"});
    double base = 0;
    for (engine::OlapEngine* e : engines) {
      const core::ProfileResult r = profile(*e, query);
      if (e == &typer) base = r.time_ms;
      t.AddRow({e->name(), TablePrinter::Fmt(r.time_ms, 1),
                std::to_string(r.instructions),
                TablePrinter::Fmt(r.ipc, 2),
                TablePrinter::Pct(r.cycles.StallRatio(), 0),
                TablePrinter::Fmt(r.bandwidth_gbps, 1)});
    }
    std::printf("%s(Typer baseline: %.1f ms)\n\n", t.ToAscii().c_str(),
                base);
  };

  compare("Projection degree 4 (SUM over four lineitem columns)",
          [](engine::OlapEngine& e, engine::Workers& w) {
            e.Projection(w, 4);
          });
  compare("TPC-H Q1 (low-cardinality group-by)",
          [](engine::OlapEngine& e, engine::Workers& w) { e.Q1(w); });
  compare("Large join (lineitem x orders)",
          [](engine::OlapEngine& e, engine::Workers& w) {
            e.Join(w, engine::JoinSize::kLarge);
          });
  return 0;
}
