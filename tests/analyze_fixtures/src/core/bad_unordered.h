#ifndef WRONG_GUARD_NAME_H
#define WRONG_GUARD_NAME_H
// Fixture: DET-UNORDERED-SIM, CON-GUARD (wrong guard), CON-USING-NS.
#include <unordered_map>

using namespace std;

namespace uolap::core {

struct TagIndex {
  unordered_map<int, int> slots;
};

}  // namespace uolap::core

#endif
