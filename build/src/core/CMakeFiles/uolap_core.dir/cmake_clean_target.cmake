file(REMOVE_RECURSE
  "libuolap_core.a"
)
