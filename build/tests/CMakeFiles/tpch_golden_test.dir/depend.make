# Empty dependencies file for tpch_golden_test.
# This may be replaced when dependencies are built.
