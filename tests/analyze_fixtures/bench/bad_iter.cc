// Fixture: DET-UNORDERED-ITER (hash-map iteration feeding an ordered
// sink) and DET-PTR-ORDER (pointer-keyed map, pointer hash, address
// ordering).
#include <cstdint>
#include <functional>
#include <map>
#include <unordered_map>

struct Registry {
  void Count(int key, long v);
};
struct Widget {
  int id = 0;
};

void EmitCounts(Registry& reg) {
  std::unordered_map<int, long> counts;
  for (const auto& kv : counts) {
    reg.Count(kv.first, kv.second);
  }
}

bool PtrKeys(const Widget* a, const Widget* b) {
  std::map<Widget*, int> by_ptr;
  std::hash<Widget*> hasher;
  (void)by_ptr;
  (void)hasher;
  return reinterpret_cast<uintptr_t>(a) < reinterpret_cast<uintptr_t>(b);
}
