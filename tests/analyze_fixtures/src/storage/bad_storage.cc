// Fixture: CON-STORAGE — charging through the raw MemorySystem. The
// second site carries a reasoned suppression and must NOT be reported
// (the self-test asserts the suppressed count instead).
namespace uolap::core {
struct Memory {
  void AccessData(unsigned long addr, int size, bool write);
};
struct Core {
  Memory& memory();
};
}  // namespace uolap::core

namespace uolap::storage {

void Charge(uolap::core::Core& core) {
  core.memory().AccessData(0, 8, false);
  core.memory().AccessData(8, 8, false);  // uolap-analyze: allow(CON-STORAGE) fixture: proves suppression drops the finding
}

}  // namespace uolap::storage
