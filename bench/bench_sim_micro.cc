// google-benchmark performance suite for the simulator itself: these are
// wall-clock benchmarks of the instrument (how fast the model simulates),
// used to keep the simulator fast enough for SF >= 1 experiments.

#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.h"
#include "core/branch_predictor.h"
#include "core/cache.h"
#include "core/core.h"
#include "core/machine.h"
#include "engine/hash_table.h"
#include "tpch/dbgen.h"

namespace {

using uolap::Rng;
using uolap::core::BranchPredictor;
using uolap::core::Core;
using uolap::core::MachineConfig;
using uolap::core::SetAssociativeCache;

void BM_CacheHit(benchmark::State& state) {
  SetAssociativeCache cache(64, 8);
  for (uint64_t k = 0; k < 8; ++k) cache.Insert(k * 64, false);
  uint64_t k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.Access((k++ % 8) * 64, false));
  }
}
BENCHMARK(BM_CacheHit);

void BM_CacheMissInsert(benchmark::State& state) {
  SetAssociativeCache cache(512, 8);
  uint64_t k = 0;
  for (auto _ : state) {
    cache.Access(k, false);
    benchmark::DoNotOptimize(cache.Insert(k, false));
    ++k;
  }
}
BENCHMARK(BM_CacheMissInsert);

void BM_CoreSequentialLoad(benchmark::State& state) {
  Core core(MachineConfig::Broadwell());
  std::vector<int64_t> data(1 << 20, 1);
  size_t i = 0;
  for (auto _ : state) {
    core.Load(&data[i], 8);
    i = (i + 1) & (data.size() - 1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CoreSequentialLoad);

void BM_CoreRandomLoad(benchmark::State& state) {
  Core core(MachineConfig::Broadwell());
  std::vector<int64_t> data(1 << 22, 1);
  Rng rng(3);
  for (auto _ : state) {
    core.Load(&data[static_cast<size_t>(rng.Next()) & (data.size() - 1)], 8);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CoreRandomLoad);

void BM_BranchPredictor(benchmark::State& state) {
  BranchPredictor bp;
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bp.Record(1, rng.Bernoulli(0.5)));
  }
}
BENCHMARK(BM_BranchPredictor);

void BM_HashTableProbe(benchmark::State& state) {
  Core core(MachineConfig::Broadwell());
  uolap::engine::JoinHashTable ht(1 << 16);
  for (int64_t k = 0; k < (1 << 16); ++k) ht.Insert(core, k, k);
  int64_t k = 0;
  int64_t payload;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ht.ProbeFirst(core, 1, k++ & ((1 << 16) - 1), &payload));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HashTableProbe);

void BM_DbGenLineitemsPerSecond(benchmark::State& state) {
  for (auto _ : state) {
    uolap::tpch::DbGen gen(1);
    auto db = gen.Generate(0.01);
    benchmark::DoNotOptimize(db.value().lineitem.size());
  }
  state.SetItemsProcessed(state.iterations() * 60000);
}
BENCHMARK(BM_DbGenLineitemsPerSecond);

}  // namespace

BENCHMARK_MAIN();
