file(REMOVE_RECURSE
  "CMakeFiles/topdown_property_test.dir/topdown_property_test.cc.o"
  "CMakeFiles/topdown_property_test.dir/topdown_property_test.cc.o.d"
  "topdown_property_test"
  "topdown_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topdown_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
