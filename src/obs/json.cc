#include "obs/json.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

namespace uolap::obs {

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

double JsonValue::GetNumber(std::string_view key, double def) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_number() ? v->number : def;
}

std::string JsonValue::GetString(std::string_view key,
                                 const std::string& def) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_string() ? v->str : def;
}

bool JsonValue::GetBool(std::string_view key, bool def) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->type == Type::kBool ? v->boolean : def;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  StatusOr<JsonValue> Parse() {
    JsonValue v;
    Status s = ParseValue(&v);
    if (!s.ok()) return s;
    SkipWs();
    if (pos_ != text_.size()) return Error("trailing characters");
    return v;
  }

 private:
  Status Error(const std::string& what) {
    return Status::InvalidArgument("JSON parse error at byte " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  // The parser recurses once per nesting level; a hostile document of
  // the form "[[[[..." would otherwise overflow the stack. Real profile
  // JSON nests a handful of levels deep.
  static constexpr int kMaxDepth = 128;

  Status ParseValue(JsonValue* out) {
    SkipWs();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    if (depth_ >= kMaxDepth) return Error("nesting too deep");
    switch (text_[pos_]) {
      case '{': {
        ++depth_;
        Status s = ParseObject(out);
        --depth_;
        return s;
      }
      case '[': {
        ++depth_;
        Status s = ParseArray(out);
        --depth_;
        return s;
      }
      case '"':
        out->type = JsonValue::Type::kString;
        return ParseString(&out->str);
      case 't':
        if (text_.substr(pos_, 4) == "true") {
          pos_ += 4;
          out->type = JsonValue::Type::kBool;
          out->boolean = true;
          return Status::OK();
        }
        return Error("bad literal");
      case 'f':
        if (text_.substr(pos_, 5) == "false") {
          pos_ += 5;
          out->type = JsonValue::Type::kBool;
          out->boolean = false;
          return Status::OK();
        }
        return Error("bad literal");
      case 'n':
        if (text_.substr(pos_, 4) == "null") {
          pos_ += 4;
          out->type = JsonValue::Type::kNull;
          return Status::OK();
        }
        return Error("bad literal");
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue* out) {
    out->type = JsonValue::Type::kObject;
    ++pos_;  // '{'
    SkipWs();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      std::string key;
      Status s = ParseString(&key);
      if (!s.ok()) return s;
      SkipWs();
      if (!Consume(':')) return Error("expected ':'");
      JsonValue v;
      s = ParseValue(&v);
      if (!s.ok()) return s;
      out->object.emplace_back(std::move(key), std::move(v));
      SkipWs();
      if (Consume('}')) return Status::OK();
      if (!Consume(',')) return Error("expected ',' or '}'");
    }
  }

  Status ParseArray(JsonValue* out) {
    out->type = JsonValue::Type::kArray;
    ++pos_;  // '['
    SkipWs();
    if (Consume(']')) return Status::OK();
    while (true) {
      JsonValue v;
      Status s = ParseValue(&v);
      if (!s.ok()) return s;
      out->array.push_back(std::move(v));
      SkipWs();
      if (Consume(']')) return Status::OK();
      if (!Consume(',')) return Error("expected ',' or ']'");
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (c != '\\') {
        // Strict JSON: raw control bytes (including embedded NUL and
        // newlines) must arrive escaped, never literal.
        if (static_cast<unsigned char>(c) < 0x20) {
          --pos_;
          return Error("raw control character in string");
        }
        *out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          *out += '"';
          break;
        case '\\':
          *out += '\\';
          break;
        case '/':
          *out += '/';
          break;
        case 'b':
          *out += '\b';
          break;
        case 'f':
          *out += '\f';
          break;
        case 'n':
          *out += '\n';
          break;
        case 'r':
          *out += '\r';
          break;
        case 't':
          *out += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("bad \\u escape");
            }
          }
          // UTF-8 encode (the exporters only ever emit < 0x20 here).
          if (code < 0x80) {
            *out += static_cast<char>(code);
          } else if (code < 0x800) {
            *out += static_cast<char>(0xC0 | (code >> 6));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            *out += static_cast<char>(0xE0 | (code >> 12));
            *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return Error("bad escape");
      }
    }
    return Error("unterminated string");
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected value");
    const std::string num(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(num.c_str(), &end);
    if (end != num.c_str() + num.size()) return Error("bad number");
    out->type = JsonValue::Type::kNumber;
    out->number = v;
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

StatusOr<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

StatusOr<JsonValue> ReadJsonFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseJson(buf.str());
}

}  // namespace uolap::obs
