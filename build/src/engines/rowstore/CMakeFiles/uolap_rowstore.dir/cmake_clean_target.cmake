file(REMOVE_RECURSE
  "libuolap_rowstore.a"
)
