#ifndef UOLAP_COMMON_STATUS_H_
#define UOLAP_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>
#include <variant>

#include "common/macros.h"

namespace uolap {

/// Error categories used across the library. Modeled after the
/// absl/Arrow/RocksDB status idiom: cheap to pass by value, OK is the
/// common case.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
};

/// Returns a short human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
std::string_view StatusCodeName(StatusCode code);

/// A success-or-error result carried by fallible public APIs (configuration
/// parsing, data generation entry points, harness plumbing). The simulator
/// and engine hot paths never construct non-OK statuses.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. `value()` aborts if the
/// status is not OK, matching the CHECK-fail discipline used elsewhere.
template <typename T>
class StatusOr {
 public:
  /*implicit*/ StatusOr(T value) : rep_(std::move(value)) {}
  /*implicit*/ StatusOr(Status status) : rep_(std::move(status)) {
    UOLAP_CHECK_MSG(!std::get<Status>(rep_).ok(),
                    "StatusOr constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(rep_);
  }

  const T& value() const& {
    UOLAP_CHECK_MSG(ok(), status().ToString().c_str());
    return std::get<T>(rep_);
  }
  T& value() & {
    UOLAP_CHECK_MSG(ok(), status().ToString().c_str());
    return std::get<T>(rep_);
  }
  T&& value() && {
    UOLAP_CHECK_MSG(ok(), status().ToString().c_str());
    return std::get<T>(std::move(rep_));
  }

 private:
  std::variant<T, Status> rep_;
};

}  // namespace uolap

#endif  // UOLAP_COMMON_STATUS_H_
