#ifndef UOLAP_ENGINE_QUERY_H_
#define UOLAP_ENGINE_QUERY_H_

#include <cstdint>
#include <string>

#include "tpch/schema.h"
#include "tpch/types.h"

namespace uolap::engine {

/// Half-open range of rows of a query's driving table; the unit of
/// multi-core partitioning.
struct RowRange {
  size_t begin = 0;
  size_t end = 0;
  size_t size() const { return end - begin; }
};

/// The paper's join micro-benchmark sizes (Section 2):
/// small: supplier x nation, medium: partsupp x supplier,
/// large: lineitem x orders.
enum class JoinSize { kSmall, kMedium, kLarge };
std::string JoinSizeName(JoinSize s);

/// Selection micro-benchmark: the degree-4 projection plus three
/// predicates `col < cutoff` on l_shipdate / l_commitdate / l_receiptdate,
/// each with the same *individual* selectivity.
struct SelectionParams {
  tpch::Date ship_cut = 0;
  tpch::Date commit_cut = 0;
  tpch::Date receipt_cut = 0;
  double selectivity = 0;   ///< the individual per-predicate selectivity
  bool predicated = false;  ///< branch-free (Section 7) variant
};

/// Computes per-column cutoffs so each predicate individually selects
/// `selectivity` of lineitem (exact quantiles of the generated data).
SelectionParams MakeSelectionParams(const tpch::Database& db,
                                    double selectivity,
                                    bool predicated = false);

/// TPC-H Q6 parameters (the standard validation values).
struct Q6Params {
  tpch::Date date_lo;    ///< 1994-01-01
  tpch::Date date_hi;    ///< 1995-01-01 (exclusive)
  int64_t discount_lo;   ///< 5 (percent points)
  int64_t discount_hi;   ///< 7
  int64_t quantity_lim;  ///< 24 (exclusive)
  bool predicated = false;
};
Q6Params MakeQ6Params(bool predicated = false);

/// TPC-H Q1: shipdate <= 1998-12-01 - 90 days.
tpch::Date Q1ShipdateCut();

/// TPC-H Q18 quantity threshold (sum(l_quantity) > 300).
inline constexpr int64_t kQ18QuantityThreshold = 300;
/// TPC-H Q18 LIMIT.
inline constexpr size_t kQ18Limit = 100;

/// Splits [0, n) into `parts` near-equal contiguous ranges.
RowRange PartitionRange(size_t n, size_t part, size_t parts);

}  // namespace uolap::engine

#endif  // UOLAP_ENGINE_QUERY_H_
