#include "core/config.h"

namespace uolap::core {

std::string PrefetcherConfig::ToString() const {
  if (!AnyEnabled()) return "all-disabled";
  if (l2_streamer && l2_next_line && l1_streamer && l1_next_line) {
    return "all-enabled";
  }
  std::string out;
  auto add = [&out](bool on, const char* name) {
    if (!on) return;
    if (!out.empty()) out += "+";
    out += name;
  };
  add(l2_streamer, "L2-Str");
  add(l2_next_line, "L2-NL");
  add(l1_streamer, "L1-Str");
  add(l1_next_line, "L1-NL");
  return out;
}

MachineConfig MachineConfig::Broadwell() {
  MachineConfig m;
  m.name = "broadwell";
  m.freq_ghz = 2.4;
  m.sockets = 2;
  m.cores_per_socket = 14;

  m.l1i = CacheConfig{32 * 1024, 8, 64, 16};
  m.l1d = CacheConfig{32 * 1024, 8, 64, 16};
  m.l2 = CacheConfig{256 * 1024, 8, 64, 26};
  m.l3 = CacheConfig{35ull * 1024 * 1024, 20, 64, 160};
  m.l3_inclusive = true;

  m.exec.simd_width_bits = 256;  // AVX2; the paper notes no AVX-512 on BDW.

  m.bandwidth = BandwidthConfig{12.0, 7.0, 66.0, 60.0};
  return m;
}

MachineConfig MachineConfig::Skylake() {
  MachineConfig m;
  m.name = "skylake";
  m.freq_ghz = 2.4;
  m.sockets = 2;
  m.cores_per_socket = 14;

  m.l1i = CacheConfig{32 * 1024, 8, 64, 14};
  m.l1d = CacheConfig{32 * 1024, 8, 64, 14};
  // Significantly larger L2, smaller non-inclusive L3 (paper Section 2).
  m.l2 = CacheConfig{1024 * 1024, 16, 64, 28};
  m.l3 = CacheConfig{16ull * 1024 * 1024, 11, 64, 160};
  m.l3_inclusive = false;

  m.exec.simd_width_bits = 512;  // AVX-512: the reason the paper uses SKX.

  // Smaller per-core, larger per-socket sequential bandwidth; similar
  // random-access bandwidth (paper Section 2, Hardware).
  m.bandwidth = BandwidthConfig{10.0, 7.0, 87.0, 60.0};
  return m;
}

}  // namespace uolap::core
