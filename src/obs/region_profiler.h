#ifndef UOLAP_OBS_REGION_PROFILER_H_
#define UOLAP_OBS_REGION_PROFILER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/core.h"
#include "core/counters.h"
#include "core/observer.h"
#include "core/topdown.h"

namespace uolap::obs {

/// One node of a per-core region tree. Node 0 is always the implicit root
/// `<run>` spanning the whole profiled run; engine/bench annotations
/// (`core::ScopedRegion`) create children. Re-entering the same name under
/// the same parent merges into one node (`visits` counts the intervals).
struct RegionNode {
  std::string name;
  int parent = -1;  ///< index into RegionTree::nodes; -1 for the root
  int depth = 0;
  std::vector<int> children;
  uint64_t visits = 0;

  /// Counter delta summed over all visits (self + descendants).
  core::CoreCounters inclusive;
  /// `inclusive` minus the children's inclusive deltas: what this node
  /// executed outside any child region. Leaf exclusive == inclusive.
  core::CoreCounters exclusive;

  /// Filled by AnalyzeTree(): the whole-run Top-Down breakdown attributed
  /// to this node's exclusive / inclusive share (see attribution.h; the
  /// exclusive breakdowns of all nodes sum to the whole-run breakdown).
  core::CycleBreakdown excl_cycles;
  core::CycleBreakdown incl_cycles;
};

/// The per-core result of a recorded run. Nodes are in creation order, so
/// a child's index is always greater than its parent's.
struct RegionTree {
  std::vector<RegionNode> nodes;

  const RegionNode& root() const { return nodes.front(); }
};

/// Cumulative counter snapshot taken when the retired-instruction count
/// crossed a sampling threshold. Consecutive samples' deltas yield the
/// per-interval IPC / miss-rate / DRAM-byte series (the paper's
/// bandwidth-over-time view); exporters derive those via
/// attribution/TopDown on each delta.
struct TimelineSample {
  uint64_t instructions = 0;
  core::CoreCounters counters;
};

/// One region push or pop, in record order, with the cumulative snapshot
/// at that point — the raw material for Chrome-trace duration events.
struct RegionEvent {
  int node = 0;
  bool begin = false;
  core::CoreCounters snapshot;
};

/// Records a region tree (and optionally a counter timeline) for one
/// simulated core by observing its push/pop markers and batched
/// accounting points. Attach one profiler per core; all state is per-core,
/// which preserves the bit-determinism of threaded ProfileMulti runs.
///
/// Usage:
///   RegionProfiler prof(core, {.sample_interval_instructions = 1 << 20});
///   ... run the workload (engines push/pop regions) ...
///   core.Finalize();
///   RegionTree tree = prof.Finish();
///
/// Error handling is non-fatal: a PopRegion with no matching push is
/// ignored and recorded in `status()`; regions still open at Finish() are
/// closed there and likewise flagged. Counters are never affected.
class RegionProfiler : public core::CoreObserver {
 public:
  struct Options {
    /// Snapshot the counter timeline every this many retired instructions
    /// (0 = timeline off). Samples are taken at the first batched
    /// accounting point at or after each threshold, so the effective
    /// granularity has one retire/range batch of slop.
    uint64_t sample_interval_instructions = 0;
  };

  explicit RegionProfiler(core::Core& core) : RegionProfiler(core, Options()) {}
  RegionProfiler(core::Core& core, Options options);
  ~RegionProfiler() override;

  RegionProfiler(const RegionProfiler&) = delete;
  RegionProfiler& operator=(const RegionProfiler&) = delete;

  // CoreObserver:
  void OnRegionPush(std::string_view name) override;
  void OnRegionPop() override;
  void OnProgress() override;

  /// Detaches from the core and returns the recorded tree. Call after
  /// `Core::Finalize()` so the root interval includes the finalize flush.
  /// The returned tree carries raw counters only; run
  /// `AnalyzeTree` (attribution.h) to fill the cycle breakdowns.
  RegionTree Finish();

  /// OK, or the first structural error observed (unbalanced pop, regions
  /// left open at Finish).
  const Status& status() const { return status_; }

  const std::vector<TimelineSample>& timeline() const { return timeline_; }
  const std::vector<RegionEvent>& events() const { return events_; }
  /// Snapshot taken at attach time (all-zero for a fresh core); timeline
  /// and event snapshots are cumulative from core birth, so exporters
  /// subtract this baseline.
  const core::CoreCounters& begin_counters() const { return begin_; }

 private:
  int ChildNamed(int parent, std::string_view name);

  core::Core& core_;
  const Options options_;
  Status status_;

  std::vector<RegionNode> nodes_;
  struct StackEntry {
    int node;
    core::CoreCounters entry_snapshot;
  };
  std::vector<StackEntry> stack_;
  core::CoreCounters begin_;
  std::vector<TimelineSample> timeline_;
  std::vector<RegionEvent> events_;
  uint64_t next_sample_ = 0;
  bool finished_ = false;
};

}  // namespace uolap::obs

#endif  // UOLAP_OBS_REGION_PROFILER_H_
