#ifndef UOLAP_TPCH_SCHEMA_H_
#define UOLAP_TPCH_SCHEMA_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/macros.h"
#include "tpch/types.h"

namespace uolap::tpch {

/// Columnar variable-length string storage (offsets into one blob), the
/// layout every column store uses for text attributes.
class StringColumn {
 public:
  void Add(std::string_view s) {
    data_.append(s);
    offsets_.push_back(static_cast<uint32_t>(data_.size()));
  }
  size_t size() const { return offsets_.size(); }

  std::string_view Get(size_t i) const {
    UOLAP_DCHECK(i < offsets_.size());
    const uint32_t begin = i == 0 ? 0 : offsets_[i - 1];
    return std::string_view(data_).substr(begin, offsets_[i] - begin);
  }

  /// Address/length of the i-th value, for driving simulated accesses.
  const char* DataPtr(size_t i) const {
    const uint32_t begin = i == 0 ? 0 : offsets_[i - 1];
    return data_.data() + begin;
  }
  uint32_t Length(size_t i) const {
    const uint32_t begin = i == 0 ? 0 : offsets_[i - 1];
    return offsets_[i] - begin;
  }

 private:
  std::vector<uint32_t> offsets_;
  std::string data_;
};

/// The TPC-H tables, columnar, restricted to the attributes the paper's
/// workloads touch. All integer-valued (see types.h for the fixed-point
/// conventions); keys are dense 1..N (a documented simplification of
/// dbgen's sparse orderkeys).
struct LineitemTable {
  std::vector<int64_t> orderkey;
  std::vector<int64_t> partkey;
  std::vector<int64_t> suppkey;
  std::vector<int64_t> quantity;       // 1..50
  std::vector<Money> extendedprice;    // cents
  std::vector<int64_t> discount;       // percent points 0..10
  std::vector<int64_t> tax;            // percent points 0..8
  std::vector<int8_t> returnflag;      // 'A' | 'N' | 'R'
  std::vector<int8_t> linestatus;      // 'O' | 'F'
  std::vector<Date> shipdate;
  std::vector<Date> commitdate;
  std::vector<Date> receiptdate;
  size_t size() const { return orderkey.size(); }
};

struct OrdersTable {
  std::vector<int64_t> orderkey;  // dense 1..N
  std::vector<int64_t> custkey;
  std::vector<Date> orderdate;
  std::vector<Money> totalprice;
  size_t size() const { return orderkey.size(); }
};

struct CustomerTable {
  std::vector<int64_t> custkey;  // dense 1..N
  std::vector<int64_t> nationkey;
  StringColumn name;
  size_t size() const { return custkey.size(); }
};

struct PartTable {
  std::vector<int64_t> partkey;  // dense 1..N
  StringColumn name;             // five words; Q9 filters '%green%'
  std::vector<Money> retailprice;
  size_t size() const { return partkey.size(); }
};

struct PartsuppTable {
  std::vector<int64_t> partkey;
  std::vector<int64_t> suppkey;
  std::vector<int64_t> availqty;
  std::vector<Money> supplycost;
  size_t size() const { return partkey.size(); }
};

struct SupplierTable {
  std::vector<int64_t> suppkey;  // dense 1..N
  std::vector<int64_t> nationkey;
  std::vector<Money> acctbal;
  StringColumn name;
  size_t size() const { return suppkey.size(); }
};

struct NationTable {
  std::vector<int64_t> nationkey;  // dense 0..24
  std::vector<int64_t> regionkey;
  StringColumn name;
  size_t size() const { return nationkey.size(); }
};

struct RegionTable {
  std::vector<int64_t> regionkey;  // dense 0..4
  StringColumn name;
  size_t size() const { return regionkey.size(); }
};

/// One generated TPC-H instance.
struct Database {
  double scale_factor = 0;
  uint64_t seed = 0;
  LineitemTable lineitem;
  OrdersTable orders;
  CustomerTable customer;
  PartTable part;
  PartsuppTable partsupp;
  SupplierTable supplier;
  NationTable nation;
  RegionTable region;
};

/// Cardinalities at scale factor 1 (dbgen's).
struct Cardinalities {
  size_t orders;
  size_t customer;
  size_t part;
  size_t supplier;
  size_t partsupp;  // 4 entries per part
};
Cardinalities CardinalitiesFor(double scale_factor);

}  // namespace uolap::tpch

#endif  // UOLAP_TPCH_SCHEMA_H_
