#!/usr/bin/env bash
# CI entry point: builds and tests the tree twice —
#   1. the normal optimized build (the configuration every figure runs in);
#   2. a ThreadSanitizer build that runs the test suite through the
#      parallel runtime (ThreadPool, RunSweep, threaded ProfileMulti), so
#      data races in engine ForEach bodies fail CI instead of silently
#      breaking the bit-determinism contract.
#
# Usage: scripts/ci.sh [jobs]   (default: nproc)

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${1:-$(nproc)}"

echo "=== release build ==="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
(cd build && ctest --output-on-failure -j "$JOBS")

# Exporter smoke: run one figure bench with --json/--trace and make sure
# both outputs parse as what they claim to be (uolap_report validates the
# profile schema version and the Chrome trace shape).
exporter_smoke() {
  local build_dir="$1"
  local out
  out="$(mktemp -d)"
  "$build_dir/bench/bench_fig11_14_join" --quick \
    --json="$out/profile.json" --trace="$out/trace.json" >/dev/null
  "$build_dir/examples/uolap_report" validate \
    "$out/profile.json" "$out/trace.json"
  "$build_dir/examples/uolap_report" diff \
    "$out/profile.json" "$out/profile.json" >/dev/null
  rm -rf "$out"
}

echo "=== exporter smoke (release) ==="
exporter_smoke build

echo "=== thread-sanitizer build ==="
cmake -B build-tsan -S . -DUOLAP_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$JOBS"
# TSan slows the simulator ~10x; run the suite with a generous timeout.
(cd build-tsan && ctest --output-on-failure -j "$JOBS" --timeout 1200)

echo "=== exporter smoke (tsan) ==="
exporter_smoke build-tsan

echo "=== ci passed ==="
