#include "common/table_printer.h"

#include <algorithm>
#include <cstdio>

#include "common/macros.h"

namespace uolap {

void TablePrinter::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  if (!header_.empty()) {
    UOLAP_CHECK_MSG(row.size() == header_.size(),
                    "row width does not match header width");
  }
  rows_.push_back(std::move(row));
}

std::string TablePrinter::Fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::Pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string TablePrinter::ToAscii() const {
  // Column widths over header + rows.
  size_t ncols = header_.size();
  for (const auto& r : rows_) ncols = std::max(ncols, r.size());
  std::vector<size_t> widths(ncols, 0);
  auto widen = [&](const std::vector<std::string>& r) {
    for (size_t i = 0; i < r.size(); ++i) {
      widths[i] = std::max(widths[i], r[i].size());
    }
  };
  if (!header_.empty()) widen(header_);
  for (const auto& r : rows_) widen(r);

  auto rule = [&]() {
    std::string s = "+";
    for (size_t w : widths) s += std::string(w + 2, '-') + "+";
    s += "\n";
    return s;
  };
  auto line = [&](const std::vector<std::string>& r) {
    std::string s = "|";
    for (size_t i = 0; i < ncols; ++i) {
      const std::string& cell = i < r.size() ? r[i] : std::string();
      s += " " + cell + std::string(widths[i] - cell.size(), ' ') + " |";
    }
    s += "\n";
    return s;
  };

  std::string out;
  if (!title_.empty()) out += title_ + "\n";
  out += rule();
  if (!header_.empty()) {
    out += line(header_);
    out += rule();
  }
  for (const auto& r : rows_) out += line(r);
  out += rule();
  return out;
}

std::string TablePrinter::ToCsv() const {
  auto line = [](const std::vector<std::string>& r) {
    std::string s;
    for (size_t i = 0; i < r.size(); ++i) {
      if (i > 0) s += ",";
      s += r[i];
    }
    s += "\n";
    return s;
  };
  std::string out;
  if (!header_.empty()) out += line(header_);
  for (const auto& r : rows_) out += line(r);
  return out;
}

}  // namespace uolap
