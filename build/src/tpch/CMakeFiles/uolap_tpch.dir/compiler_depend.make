# Empty compiler generated dependencies file for uolap_tpch.
# This may be replaced when dependencies are built.
