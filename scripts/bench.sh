#!/usr/bin/env bash
# Regenerates BENCH_sim.json mechanically: runs every figure bench with
# --json (the obs profile exporter), then merges the per-bench profiles
# with `uolap_report merge`. Future before/after comparisons come from
# `uolap_report diff old.json new.json` on the per-bench profiles instead
# of hand-edited numbers.
#
# Usage: scripts/bench.sh [--full] [out.json]
#   default: --quick profiles, writes build/BENCH_sim.json. Refreshing
#   the tracked repo-root record is an explicit act:
#     scripts/bench.sh BENCH_sim.json
#   (the default deliberately stays out of the repo root so a casual run
#   cannot clobber the checked-in perf history; see commit 664ee86).
#   --full:  paper-scale runs (slow; minutes per bench).
#
# Per-bench profile JSONs are kept in bench_profiles/ next to the output
# so individual runs can be inspected (`uolap_report summary ... --regions`)
# or diffed later.

set -euo pipefail
cd "$(dirname "$0")/.."

QUICK="--quick"
if [[ "${1:-}" == "--full" ]]; then
  QUICK=""
  shift
fi
OUT="${1:-build/BENCH_sim.json}"

BENCHES=(
  bench_fig01_06_projection
  bench_fig07_10_selection
  bench_fig11_14_join
  bench_fig15_16_tpch
  bench_fig17_21_predication
  bench_fig22_25_simd
  bench_fig26_prefetchers
  bench_fig27_30_multicore
  bench_ablations
)

cmake -B build -S . >/dev/null
cmake --build build -j "$(nproc)" >/dev/null

PROFILE_DIR="bench_profiles"
mkdir -p "$PROFILE_DIR"

profiles=()
for bench in "${BENCHES[@]}"; do
  echo "# $bench ${QUICK:+(quick)}"
  profile="$PROFILE_DIR/$bench.json"
  # shellcheck disable=SC2086  # QUICK is intentionally word-split
  "build/bench/$bench" $QUICK --json="$profile" >/dev/null
  profiles+=("$profile")
done

# Simulator-throughput section (bench_sim_micro): tuples simulated per
# wall-clock second for the hot-path shapes, measured through both the
# reference kernels and the accelerated ones (before/after + speedup).
# The google-benchmark suite is skipped here (--benchmark_filter matches
# nothing); run bench_sim_micro directly for the microbenchmarks.
echo "# bench_sim_micro (simulator throughput, fast vs reference)"
build/bench/bench_sim_micro --benchmark_filter='^$' \
  --out="$PROFILE_DIR/sim_micro.json"

# Serve-path section (v3 of the uolap-bench-sim record): a fixed-seed
# multi-tenant serving run whose end-to-end latency digest (overall and
# per-tenant p99) is embedded next to the per-operator cycle counts.
echo "# uolap_serve (serve-path latency digest)"
# shellcheck disable=SC2086  # QUICK is intentionally word-split
build/examples/uolap_serve $QUICK --seed=7 --stable-json \
  --json="$PROFILE_DIR/serve.json" >/dev/null

build/examples/uolap_report merge --out="$OUT" \
  --throughput="$PROFILE_DIR/sim_micro.json" \
  --serve="$PROFILE_DIR/serve.json" "${profiles[@]}"
build/examples/uolap_report validate "${profiles[@]}" >/dev/null
echo "# wrote $OUT (profiles kept in $PROFILE_DIR/)"
