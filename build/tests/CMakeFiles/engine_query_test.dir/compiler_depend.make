# Empty compiler generated dependencies file for engine_query_test.
# This may be replaced when dependencies are built.
