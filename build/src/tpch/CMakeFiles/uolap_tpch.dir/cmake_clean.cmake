file(REMOVE_RECURSE
  "CMakeFiles/uolap_tpch.dir/dbgen.cc.o"
  "CMakeFiles/uolap_tpch.dir/dbgen.cc.o.d"
  "CMakeFiles/uolap_tpch.dir/types.cc.o"
  "CMakeFiles/uolap_tpch.dir/types.cc.o.d"
  "libuolap_tpch.a"
  "libuolap_tpch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uolap_tpch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
