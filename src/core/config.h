#ifndef UOLAP_CORE_CONFIG_H_
#define UOLAP_CORE_CONFIG_H_

#include <cstdint>
#include <string>

namespace uolap::core {

/// Geometry and miss latency of one cache level.
///
/// `miss_latency_cycles` is the *additional* latency paid when this level
/// misses and the next level is consulted, matching how the paper's Table 1
/// reports the Broadwell hierarchy (L1 16-cycle, L2 26-cycle, L3 160-cycle
/// miss latencies; cumulative DRAM latency = 16+26+160 = 202 cycles at
/// 2.4 GHz, i.e. ~84 ns, which agrees with MLC-measured DRAM latency).
struct CacheConfig {
  uint64_t size_bytes = 0;
  uint32_t associativity = 8;
  uint32_t line_bytes = 64;
  uint32_t miss_latency_cycles = 0;

  uint64_t num_sets() const {
    return size_bytes / (static_cast<uint64_t>(associativity) * line_bytes);
  }
};

/// Which of the four Intel hardware prefetchers are enabled. These map
/// one-to-one to the MSR 0x1A4 bits the paper toggles in its Section 9
/// experiments.
struct PrefetcherConfig {
  bool l2_streamer = true;    ///< MSR bit 0: L2 hardware (streamer) prefetcher
  bool l2_next_line = true;   ///< MSR bit 1: L2 adjacent-line prefetcher
  bool l1_streamer = true;    ///< MSR bit 2: DCU streamer (L1 IP) prefetcher
  bool l1_next_line = true;   ///< MSR bit 3: DCU next-line prefetcher

  /// How many cache lines the L2 streamer runs ahead of the demand stream.
  uint32_t streamer_distance_lines = 20;

  bool AnyEnabled() const {
    return l2_streamer || l2_next_line || l1_streamer || l1_next_line;
  }
  bool AnyStreamer() const { return l2_streamer || l1_streamer; }
  bool AnyNextLine() const { return l2_next_line || l1_next_line; }

  static PrefetcherConfig AllEnabled() { return PrefetcherConfig{}; }
  static PrefetcherConfig AllDisabled() {
    return PrefetcherConfig{false, false, false, false, 20};
  }
  static PrefetcherConfig Only(bool l2_str, bool l2_nl, bool l1_str,
                               bool l1_nl) {
    return PrefetcherConfig{l2_str, l2_nl, l1_str, l1_nl, 20};
  }

  std::string ToString() const;
};

/// Out-of-order execution engine widths and penalties.
struct ExecConfig {
  uint32_t issue_width = 4;          ///< retired uops per cycle (4-wide)
  uint32_t decode_width = 4;         ///< simple-instruction decode per cycle
  uint32_t alu_ports = 4;            ///< integer ALU ports (BDW: p0,1,5,6)
  uint32_t load_ports = 2;           ///< load AGU/data ports (p2,p3)
  uint32_t store_ports = 1;          ///< store data port (p4)
  uint32_t agu_ports = 2;            ///< address-generation units shared by
                                     ///< loads and stores (p7 helps only
                                     ///< simple stores; modelled as 2)
  uint32_t mul_ports = 1;            ///< integer multiply (p1)
  uint32_t simd_ports = 2;           ///< vector ALU ports
  uint32_t simd_width_bits = 256;    ///< AVX2 on Broadwell, 512 on Skylake
  uint32_t branch_misp_penalty = 15; ///< pipeline refill cycles
  uint32_t div_latency = 20;         ///< 64-bit integer divide
  uint32_t complex_decode_cost = 1;  ///< decode cycles per complex instr
};

/// Maximum sustainable memory bandwidths, exactly as reported in the
/// paper's Table 1 (measured with Intel MLC).
struct BandwidthConfig {
  double per_core_seq_gbps = 12.0;
  double per_core_rand_gbps = 7.0;
  double per_socket_seq_gbps = 66.0;
  double per_socket_rand_gbps = 60.0;
};

/// Full machine description. The two presets carry the parameters of the
/// paper's Broadwell (Table 1) and Skylake (Section 2, Hardware) servers.
struct MachineConfig {
  std::string name = "broadwell";
  double freq_ghz = 2.4;
  uint32_t sockets = 2;
  uint32_t cores_per_socket = 14;
  bool hyper_threading = false;  ///< disabled in all paper experiments

  CacheConfig l1i;
  CacheConfig l1d;
  CacheConfig l2;
  CacheConfig l3;
  bool l3_inclusive = true;

  /// DTLB/STLB geometry. 4 KB pages by default: the paper's Ubuntu setup
  /// uses THP=madvise, and none of the engines madvise their allocations,
  /// so random-access working sets pay real TLB walks (visible inside the
  /// Dcache component). The huge-page what-if lives in bench_ablations.
  uint64_t page_bytes = 4096;
  uint32_t dtlb_entries = 64;
  uint32_t dtlb_ways = 4;
  uint32_t stlb_entries = 1536;
  uint32_t stlb_ways = 12;  // 128 sets x 12 ways, as on Skylake
  uint32_t stlb_hit_cycles = 7;
  uint32_t page_walk_cycles = 30;

  PrefetcherConfig prefetchers;
  ExecConfig exec;
  BandwidthConfig bandwidth;

  /// 2x14-core Intel Xeon E5-2680 v4 as in the paper's Table 1.
  static MachineConfig Broadwell();
  /// The paper's Skylake SIMD server: AVX-512, 1 MB L2, 16 MB non-inclusive
  /// L3, 10 GB/s per-core and 87 GB/s per-socket sequential bandwidth,
  /// similar random-access bandwidth to Broadwell.
  static MachineConfig Skylake();

  /// Cumulative load-to-use latency (cycles) of a hit in each level beyond
  /// L1 (L1 hits are part of the pipelined execution model, not a stall).
  uint32_t L2HitCycles() const { return l1d.miss_latency_cycles; }
  uint32_t L3HitCycles() const {
    return l1d.miss_latency_cycles + l2.miss_latency_cycles;
  }
  uint32_t DramCycles() const {
    return l1d.miss_latency_cycles + l2.miss_latency_cycles +
           l3.miss_latency_cycles;
  }

  /// Bandwidths converted to bytes per core-cycle at `freq_ghz`.
  double SeqBytesPerCycle() const {
    return bandwidth.per_core_seq_gbps / freq_ghz;
  }
  double RandBytesPerCycle() const {
    return bandwidth.per_core_rand_gbps / freq_ghz;
  }
  double SocketSeqBytesPerCycle() const {
    return bandwidth.per_socket_seq_gbps / freq_ghz;
  }
  double SocketRandBytesPerCycle() const {
    return bandwidth.per_socket_rand_gbps / freq_ghz;
  }
};

}  // namespace uolap::core

#endif  // UOLAP_CORE_CONFIG_H_
