#include "server/serving.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "audit/invariants.h"
#include "audit/validation.h"
#include "common/crc32c.h"
#include "common/macros.h"
#include "common/rng.h"
#include "core/machine.h"
#include "engine/engine.h"
#include "obs/attribution.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/region_profiler.h"
#include "obs/slo.h"
#include "server/checkpoint.h"
#include "server/journal.h"
#include "server/loop_state.h"

namespace uolap::server {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
/// Remaining-work threshold below which an instance counts as complete
/// (work is a fraction in [0, 1]; the epoch length is chosen so the
/// finishing instance lands within rounding error of zero).
constexpr double kDoneEps = 1e-9;
/// Stream salt separating backoff-jitter draws from the fault plan's own
/// hash chains ("BACKOFFS" in ASCII).
constexpr uint64_t kBackoffSalt = 0x4241434B4F464653ULL;

double CyclesToMs(double cycles, double freq_ghz) {
  return cycles / (freq_ghz * 1e6);
}

double MsToCycles(double ms, double freq_ghz) { return ms * freq_ghz * 1e6; }

/// Exponential draw with the given mean (<= 0 mean draws 0).
double ExpDraw(Rng& rng, double mean) {
  if (mean <= 0) return 0;
  // NextDouble() is in [0, 1), so the argument stays in (0, 1].
  return -std::log(1.0 - rng.NextDouble()) * mean;
}

/// Log2 latency bucket: 0 counts < 1 ms, bucket i counts [2^(i-1), 2^i).
size_t HistBucket(double ms) {
  size_t bucket = 0;
  double edge = 1.0;
  while (ms >= edge && bucket < 63) {
    edge *= 2.0;
    ++bucket;
  }
  return bucket;
}

/// Nearest-rank percentile of an ascending-sorted list (q in (0, 1]).
double Percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  const size_t n = sorted.size();
  size_t rank = static_cast<size_t>(std::ceil(q * static_cast<double>(n)));
  rank = std::min(std::max<size_t>(rank, 1), n);
  return sorted[rank - 1];
}

}  // namespace

Server::Server(const ServerConfig& config, engine::EngineRegistry& registry)
    : config_(config), registry_(registry) {
  UOLAP_CHECK_MSG(config_.cores >= 1, "server needs at least one core");
  UOLAP_CHECK_MSG(
      static_cast<uint32_t>(config_.cores) <=
          config_.machine.cores_per_socket,
      "server core pool exceeds the machine's cores per socket");
}

void Server::AddTenant(TenantConfig tenant) {
  UOLAP_CHECK_MSG(!tenant.catalog.empty(), "tenant catalog is empty");
  UOLAP_CHECK_MSG(registry_.Has(tenant.engine),
                  "tenant references an unknown engine key");
  const engine::OlapEngine& eng = *registry_.Get(tenant.engine).value();
  for (const engine::QuerySpec& spec : tenant.catalog) {
    UOLAP_CHECK_MSG(eng.Supports(spec.id),
                    "tenant catalog contains an unsupported query");
  }
  const bool open = tenant.arrival_qps > 0;
  const bool closed = tenant.concurrency > 0;
  UOLAP_CHECK_MSG(open != closed,
                  "tenant must be open-loop (arrival_qps) xor closed-loop "
                  "(concurrency)");
  tenants_.push_back(std::move(tenant));
  classes_ready_ = false;
}

void Server::EnsureClasses() {
  if (classes_ready_) return;
  // Classes are simulated in tenant/catalog order, deduplicated by label,
  // so the set of machine executions is a deterministic function of the
  // tenant list (and each class is executed exactly once per Server).
  std::map<std::string, size_t> by_label;
  for (const QueryClass& cls : classes_) {
    by_label[cls.label] = static_cast<size_t>(&cls - classes_.data());
  }
  tenant_classes_.clear();
  tenant_classes_.reserve(tenants_.size());
  for (const TenantConfig& tenant : tenants_) {
    std::vector<size_t> indices;
    indices.reserve(tenant.catalog.size());
    for (const engine::QuerySpec& spec : tenant.catalog) {
      const std::string label = tenant.engine + "/" + spec.Label();
      auto it = by_label.find(label);
      if (it == by_label.end()) {
        classes_.push_back(SimulateClass(tenant.engine, spec));
        it = by_label.emplace(label, classes_.size() - 1).first;
      }
      indices.push_back(it->second);
    }
    tenant_classes_.push_back(std::move(indices));
  }
  // Brown-out wiring: when brown-out is configured, resolve (and
  // solo-profile) the cheaper class for every class whose engine has a
  // downgrade mapping that supports the query. The two solo answers must
  // agree — the differential check that a brown-out degrades cost, never
  // correctness. Gated on the config so default runs simulate exactly the
  // classes they always did (bit-determinism).
  if (config_.brownout.queue_depth > 0) {
    for (size_t i = 0; i < classes_.size(); ++i) {
      auto mapped = config_.brownout.downgrade.find(classes_[i].engine);
      if (mapped == config_.brownout.downgrade.end()) continue;
      const std::string down_key = mapped->second;
      if (down_key == classes_[i].engine) continue;
      UOLAP_CHECK_MSG(registry_.Has(down_key),
                      "brown-out downgrade engine is not registered");
      engine::OlapEngine& down = *registry_.Get(down_key).value();
      if (!down.Supports(classes_[i].spec.id)) continue;
      const std::string label = down_key + "/" + classes_[i].spec.Label();
      auto at = by_label.find(label);
      if (at == by_label.end()) {
        classes_.push_back(SimulateClass(down_key, classes_[i].spec));
        at = by_label.emplace(label, classes_.size() - 1).first;
      }
      UOLAP_CHECK_MSG(classes_[i].result == classes_[at->second].result,
                      "brown-out downgrade changed the query answer");
      classes_[i].downgrade = static_cast<int>(at->second);
    }
  }
  classes_ready_ = true;
}

Server::QueryClass Server::SimulateClass(const std::string& engine_key,
                                         const engine::QuerySpec& spec) {
  QueryClass cls;
  cls.engine = engine_key;
  cls.spec = spec;
  cls.label = engine_key + "/" + spec.Label();
  engine::OlapEngine& eng = *registry_.Get(engine_key).value();

  // The solo execution: the engine really runs the query on a fresh
  // single-core machine through the dispatch API, profiled per region —
  // the same recipe as harness::ProfileSingleObs (the server cannot link
  // the harness; see the layering contract).
  core::Machine machine(config_.machine, 1);
  if (audit::ValidationEnabled()) audit::ArmMachine(machine);
  obs::RegionProfiler profiler(
      machine.core(0),
      obs::RegionProfiler::Options{config_.sample_interval_instructions});
  engine::Workers w(machine.core(0));
  cls.result = eng.Run(spec, w).value();
  machine.FinalizeAll();

  obs::RunRecord run;
  run.label = "serve/" + cls.label;
  run.threads = 1;
  run.config = config_.machine;
  run.bw_scale = 1.0;
  obs::CoreRecord rec;
  rec.whole = machine.AnalyzeCore(0);
  rec.regions = profiler.Finish();
  obs::AnalyzeTree(config_.machine, &rec.regions, run.bw_scale);
  rec.timeline = profiler.timeline();
  rec.events = profiler.events();
  rec.begin = profiler.begin_counters();
  run.makespan_cycles = rec.whole.total_cycles;
  run.time_ms = rec.whole.time_ms;
  run.socket_bandwidth_gbps = rec.whole.bandwidth_gbps;
  run.cores.push_back(std::move(rec));
  if (audit::ValidationEnabled()) {
    audit::AuditReport rep = audit::AuditMachine(machine, run.label);
    audit::CheckBreakdown(run.cores[0].whole, config_.machine.freq_ghz,
                          run.label + "/core0/topdown", &rep);
    run.audited = true;
    run.audit_checks = rep.checks;
    run.violations = rep.violations;
    audit::ReportViolations(rep, run.label);
  }

  cls.counters = run.cores[0].whole.counters;
  cls.solo = run.cores[0].whole;
  // Byte classes mirror core::MultiCoreModel: prefetch waste and
  // writebacks ride the sequential stream.
  cls.bytes_seq =
      static_cast<double>(cls.counters.mem.dram_demand_bytes_seq +
                          cls.counters.mem.dram_prefetch_waste_bytes +
                          cls.counters.mem.dram_writeback_bytes);
  cls.bytes_rand =
      static_cast<double>(cls.counters.mem.dram_demand_bytes_rand);
  // Cancellation points (DESIGN.md §9): a timed-out query keeps running —
  // and contending — until the next top-level operator-region boundary of
  // its class, modeled as the cumulative Top-Down cycle fractions of the
  // solo run's depth-1 regions. A class without regions cancels only at
  // completion (and so effectively runs to the end, merely late).
  const obs::RegionTree& tree = run.cores[0].regions;
  if (cls.solo.total_cycles > 0 && !tree.nodes.empty()) {
    double cum = 0;
    for (const int child : tree.root().children) {
      cum += tree.nodes[static_cast<size_t>(child)].incl_cycles.Total();
      const double frac = cum / cls.solo.total_cycles;
      if (frac > kDoneEps && frac < 1.0 - kDoneEps) {
        cls.cancel_fractions.push_back(frac);
      }
    }
  }
  cls.cancel_fractions.push_back(1.0);
  cls.solo_run = std::move(run);
  return cls;
}

ServeResult Server::Run() { return TryRun().value(); }

StatusOr<ServeResult> Server::TryRun() {
  UOLAP_CHECK_MSG(!tenants_.empty(), "no tenants added");
  EnsureClasses();

  const core::MachineConfig& cfg = config_.machine;
  const double freq = cfg.freq_ghz;
  const core::TopDownModel model(cfg);
  const int cores = config_.cores;

  const CheckpointConfig& ck = config_.checkpoint;
  if (ck.enabled()) {
    UOLAP_CHECK_MSG(config_.epoch_ms > 0,
                    "checkpointing requires epoch windows (epoch_ms > 0)");
    UOLAP_CHECK_MSG(ck.every_epochs >= 1, "checkpoint-every must be >= 1");
  }

  // The loop's complete mutable state lives in one serializable struct
  // (server/loop_state.h) so epoch-boundary snapshots can capture it and
  // recovery can restore it bit for bit. The aliases and references below
  // keep the loop body reading as it did when the state was local.
  using Instance = QueryInstance;
  using TenantState = TenantLoopState;
  using ClassStats = ClassLoopStats;
  LoopState st;

  std::vector<TenantState>& tstates = st.tenants;
  tstates.resize(tenants_.size());
  for (size_t t = 0; t < tenants_.size(); ++t) {
    const TenantConfig& tc = tenants_[t];
    TenantState& ts = tstates[t];
    ts.rng.Seed(tc.seed != 0 ? tc.seed : Mix64(0x5345525645ULL + t));
    ts.cap = tc.max_queries != 0 ? tc.max_queries
                                 : config_.default_max_queries;
    // Zipf CDF over the catalog order: P(i) proportional to 1/(i+1)^s.
    double norm = 0;
    ts.zipf_cdf.reserve(tc.catalog.size());
    for (size_t i = 0; i < tc.catalog.size(); ++i) {
      norm += std::pow(static_cast<double>(i + 1), -tc.zipf_s);
      ts.zipf_cdf.push_back(norm);
    }
    for (double& c : ts.zipf_cdf) c /= norm;
    if (tc.arrival_qps > 0) {
      ts.next_open_arrival =
          MsToCycles(ExpDraw(ts.rng, 1000.0 / tc.arrival_qps), freq);
    } else {
      ts.client_wake.resize(static_cast<size_t>(tc.concurrency));
      for (double& wake : ts.client_wake) {
        wake = MsToCycles(ExpDraw(ts.rng, tc.think_ms), freq);
      }
    }
  }
  std::vector<ClassStats>& cstats = st.classes;
  cstats.resize(classes_.size());

  // Returns the tenant's drawn *catalog index* (not class index): the
  // catalog spec carries the per-submission deadline, the class only the
  // workload identity.
  auto pick_entry = [&](size_t t) -> size_t {
    const TenantState& ts = tstates[t];
    const double u = tstates[t].rng.NextDouble();
    size_t i = 0;
    while (i + 1 < ts.zipf_cdf.size() && u >= ts.zipf_cdf[i]) ++i;
    return i;
  };

  // --- robustness state (DESIGN.md §9) --------------------------------
  const AdmissionConfig& adm = config_.admission;
  AdmissionController ctl(adm, cores);
  for (size_t i = 0; i < classes_.size(); ++i) {
    ctl.SeedClass(i, classes_[i].spec.cost_hint_ms > 0
                         ? classes_[i].spec.cost_hint_ms
                         : classes_[i].solo.time_ms);
  }
  const bool faults_on = config_.faults.enabled();
  UOLAP_CHECK_MSG(config_.retry.max_retries >= 0 &&
                      config_.retry.max_retries < 1024,
                  "retry budget outside the attempt-key space");
  // drained in (retry_ready, seq) order
  std::vector<Instance>& retry_queue = st.retry_queue;
  double& queued_est_ms = st.queued_est_ms;
  uint64_t& faults_injected = st.faults_injected;
  uint64_t& slowdowns_injected = st.slowdowns_injected;
  uint64_t& brownout_downgrades = st.brownout_downgrades;

  auto protected_tenant = [&](size_t t) {
    return tenants_[t].priority >= adm.protect_priority;
  };
  auto quota_ok = [&](const TenantState& ts) {
    return adm.tenant_shed_quota == 0 ||
           ts.rejected + ts.shed < adm.tenant_shed_quota;
  };
  const bool reject_on = adm.policy == ShedPolicy::kReject ||
                         adm.policy == ShedPolicy::kBoth;
  const bool shed_on = adm.policy == ShedPolicy::kShed ||
                       adm.policy == ShedPolicy::kBoth;

  std::vector<Instance>& slots = st.slots;
  slots.assign(static_cast<size_t>(cores), Instance{});
  std::vector<Instance>& queue = st.queue;  // FIFO; head pops from the front
  uint64_t& queue_head = st.queue_head;

  double& vtime = st.vtime;
  double& total_bytes = st.total_bytes;
  double& peak_gbps = st.peak_gbps;
  bool& saturated = st.saturated;
  std::vector<obs::QueueSample>& timeline = st.timeline;
  std::map<std::string, std::vector<double>>& engine_latencies =
      st.engine_latencies;

  // --- serving telemetry state (DESIGN.md §8) -------------------------
  obs::MetricsRegistry& metrics =
      config_.metrics != nullptr ? *config_.metrics
                                 : obs::MetricsRegistry::Global();
  uint64_t& seq_counter = st.seq_counter;
  std::vector<obs::QuerySpan>& spans = st.spans;
  std::vector<double>& all_latencies = st.all_latencies;
  uint32_t& cur_running = st.cur_running;
  uint32_t& cur_queued = st.cur_queued;
  uint32_t& peak_queued = st.peak_queued;

  // --- crash consistency (DESIGN.md §10) ------------------------------
  uint64_t config_fingerprint = 0;
  uint32_t class_digest = 0;
  if (ck.enabled()) {
    config_fingerprint = ServingConfigFingerprint(config_, tenants_);
    for (const QueryClass& qc : classes_) {
      class_digest = Crc32c(qc.label.data(), qc.label.size(), class_digest);
      const double vals[3] = {static_cast<double>(qc.solo.total_cycles),
                              qc.bytes_seq, qc.bytes_rand};
      class_digest = Crc32c(vals, sizeof(vals), class_digest);
    }
  }
  JournalWriter journal;
  std::vector<std::string> expected_events;  // resume: journal to verify
  size_t expected_pos = 0;
  bool snapshot_pending = false;
  Status ck_error;  // deferred journal error; surfaced at the loop top

  // Emits one per-query event. Fresh runs append it to the live journal;
  // a resumed run first *verifies* re-derived events against the crashed
  // run's journal (replay-as-verification: the runtime is deterministic,
  // so any divergence means the checkpoint belongs to a different
  // configuration) and only then starts appending new ones.
  auto journal_event = [&](JournalEventType type, const Instance& inst) {
    if (!ck.enabled()) return;
    // Counted before the verify/append split so a resumed run's counter
    // matches the uninterrupted one.
    metrics.Count(obs::metric_names::kServerJournalRecordsTotal);
    const std::string payload = EncodeJournalEvent(
        JournalEvent{type, inst.seq, inst.tenant,
                     static_cast<uint32_t>(inst.attempt),
                     CyclesToMs(vtime, freq)});
    if (expected_pos < expected_events.size()) {
      if (payload != expected_events[expected_pos] && ck_error.ok()) {
        std::string detail;
        StatusOr<JournalEvent> want =
            DecodeJournalEvent(expected_events[expected_pos]);
        if (want.ok()) {
          detail = " (journal has " +
                   std::string(JournalEventTypeName(want.value().type)) +
                   " seq=" + std::to_string(want.value().seq) +
                   ", re-derived " + std::string(JournalEventTypeName(type)) +
                   " seq=" + std::to_string(inst.seq) + ")";
        }
        ck_error = Status::Internal("journal replay divergence at record " +
                                    std::to_string(expected_pos) + detail);
      }
      ++expected_pos;
      return;
    }
    if (!journal.is_open()) return;  // events before the first snapshot
    const Status appended = journal.AppendRecord(payload);
    if (!appended.ok() && ck_error.ok()) ck_error = appended;
  };

  // Writes the epoch-boundary snapshot and rotates the journal: events
  // after this snapshot land in its paired journal file.
  auto write_snapshot = [&]() -> Status {
    // Counted before the registry capture so the snapshot's own metrics
    // include this write — a resumed run's final counter then matches the
    // uninterrupted one exactly.
    metrics.Count(obs::metric_names::kServerCheckpointsTotal);
    CheckpointSnapshot snap;
    snap.config_fingerprint = config_fingerprint;
    snap.class_digest = class_digest;
    snap.epoch_index = st.epoch_index;
    snap.freq_ghz = freq;
    snap.state = st;
    // The queue's popped prefix is dead weight; persist the live suffix.
    snap.state.queue.erase(
        snap.state.queue.begin(),
        snap.state.queue.begin() + static_cast<long>(st.queue_head));
    snap.state.queue_head = 0;
    snap.admission_models = ctl.models();
    snap.metrics = metrics.Snapshot();
    Status written = WriteSnapshotFile(ck.dir, snap);
    if (!written.ok()) return written;
    Status rotated = journal.Close();
    if (!rotated.ok()) return rotated;
    return journal.Create(ck.dir + "/" + JournalFileName(st.epoch_index));
  };

  // SLO epoch windows: fixed-width virtual-time buckets accumulating the
  // latencies completed inside them plus occupancy extremes. Epochs are
  // closed (and their percentiles frozen) the moment virtual time crosses
  // the boundary, so a completion exactly on a boundary starts the next
  // window — a deterministic tie rule.
  const double epoch_cycles =
      config_.epoch_ms > 0 ? MsToCycles(config_.epoch_ms, freq) : 0;
  EpochAccState& acc = st.acc;
  int& epoch_index = st.epoch_index;
  double& epoch_start = st.epoch_start;
  std::vector<obs::EpochRecord>& epochs = st.epochs;

  auto window_stats = [&](std::map<std::string, std::vector<double>>& lat) {
    std::vector<obs::WindowStat> out;
    for (auto& [subject, values] : lat) {
      std::sort(values.begin(), values.end());
      obs::WindowStat w;
      w.subject = subject;
      w.completed = values.size();
      w.p50_ms = Percentile(values, 0.50);
      w.p95_ms = Percentile(values, 0.95);
      w.p99_ms = Percentile(values, 0.99);
      out.push_back(std::move(w));
    }
    return out;
  };

  auto close_epoch = [&](double end_cycles) {
    obs::EpochRecord e;
    e.index = epoch_index;
    e.start_ms = CyclesToMs(epoch_start, freq);
    e.end_ms = CyclesToMs(end_cycles, freq);
    std::sort(acc.lat.begin(), acc.lat.end());
    e.completed = acc.lat.size();
    e.p50_ms = Percentile(acc.lat, 0.50);
    e.p95_ms = Percentile(acc.lat, 0.95);
    e.p99_ms = Percentile(acc.lat, 0.99);
    e.max_running = acc.max_running;
    e.max_queued = acc.max_queued;
    e.tenants = window_stats(acc.tenant_lat);
    e.classes = window_stats(acc.class_lat);
    epochs.push_back(std::move(e));
    acc = EpochAccState{};
    // Occupancy persists across the boundary; seed the new window's
    // extremes with the level it inherits.
    acc.max_running = cur_running;
    acc.max_queued = cur_queued;
    epoch_start = end_cycles;
    ++epoch_index;
    if (ck.enabled() && epoch_index % ck.every_epochs == 0) {
      // Snapshot at the next top-of-loop, once the boundary's completions
      // and arrivals are settled.
      snapshot_pending = true;
    }
  };

  auto roll_epochs = [&](double now) {
    if (epoch_cycles <= 0) return;
    while (now >= epoch_start + epoch_cycles) {
      close_epoch(epoch_start + epoch_cycles);
    }
  };

  auto sample_queue = [&]() {
    uint32_t running = 0;
    for (const Instance& inst : slots) running += inst.tenant >= 0 ? 1 : 0;
    const uint32_t queued =
        static_cast<uint32_t>(queue.size() - queue_head);
    cur_running = running;
    cur_queued = queued;
    peak_queued = std::max(peak_queued, queued);
    acc.max_running = std::max(acc.max_running, running);
    acc.max_queued = std::max(acc.max_queued, queued);
    if (!timeline.empty() && timeline.back().running == running &&
        timeline.back().queued == queued) {
      return;
    }
    timeline.push_back(
        obs::QueueSample{CyclesToMs(vtime, freq), running, queued});
  };

  // Terminal non-completion outcomes (rejected/shed/timed_out/failed):
  // count, publish, span, and — for closed-loop clients — schedule the
  // next think wake (a failed query still releases its client).
  // `core` is the slot the attempt ran on, -1 when it never started.
  auto terminal = [&](const Instance& inst, engine::QueryOutcome outcome,
                      int core) {
    const size_t t = static_cast<size_t>(inst.tenant);
    const TenantConfig& tc = tenants_[t];
    TenantState& ts = tstates[t];
    namespace mn = obs::metric_names;
    switch (outcome) {
      case engine::QueryOutcome::kRejected:
        ++ts.rejected;
        metrics.Count(mn::kServerQueriesRejected, "tenant", tc.name);
        break;
      case engine::QueryOutcome::kShed:
        ++ts.shed;
        metrics.Count(mn::kServerQueriesShed, "tenant", tc.name);
        break;
      case engine::QueryOutcome::kTimedOut:
        ++ts.timed_out;
        metrics.Count(mn::kServerQueriesTimedOut, "tenant", tc.name);
        break;
      case engine::QueryOutcome::kFailed:
        ++ts.failed;
        metrics.Count(mn::kServerQueriesFailed, "tenant", tc.name);
        break;
      case engine::QueryOutcome::kOk:
        break;
    }
    JournalEventType ev = JournalEventType::kFail;
    switch (outcome) {
      case engine::QueryOutcome::kRejected:
        ev = JournalEventType::kReject;
        break;
      case engine::QueryOutcome::kShed:
        ev = JournalEventType::kShed;
        break;
      case engine::QueryOutcome::kTimedOut:
        ev = JournalEventType::kTimeout;
        break;
      case engine::QueryOutcome::kFailed:
      case engine::QueryOutcome::kOk:  // terminal() is never called with kOk
        break;
    }
    journal_event(ev, inst);
    if (inst.sampled) {
      obs::QuerySpan span;
      span.seq = inst.seq;
      span.tenant = tc.name;
      span.cls = classes_[inst.cls].label;
      span.arrival_ms = CyclesToMs(inst.arrival, freq);
      span.start_ms = CyclesToMs(core >= 0 ? inst.start : vtime, freq);
      span.end_ms = CyclesToMs(vtime, freq);
      span.core = core;
      span.outcome = std::string(engine::QueryOutcomeName(outcome));
      span.attempts = static_cast<uint32_t>(inst.attempt);
      spans.push_back(std::move(span));
    }
    if (inst.client >= 0) {
      ts.client_wake[static_cast<size_t>(inst.client)] =
          vtime + MsToCycles(ExpDraw(ts.rng, tc.think_ms), freq);
    }
  };

  // Returns false when the query was rejected at admission (the caller's
  // closed-loop client got its next wake from terminal()).
  auto submit = [&](size_t t, int client) -> bool {
    TenantState& ts = tstates[t];
    const TenantConfig& tc = tenants_[t];
    const size_t entry = pick_entry(t);
    const engine::QuerySpec& qspec = tc.catalog[entry];
    Instance inst;
    inst.tenant = static_cast<int>(t);
    inst.cls = tenant_classes_[t][entry];
    inst.client = client;
    inst.seq = seq_counter++;
    inst.sampled = config_.trace_sample_n > 0 &&
                   inst.seq % config_.trace_sample_n == 0;
    inst.arrival = vtime;
    const double deadline_ms =
        qspec.deadline_ms > 0 ? qspec.deadline_ms : adm.default_deadline_ms;
    if (deadline_ms > 0) {
      inst.deadline = vtime + MsToCycles(deadline_ms, freq);
    }
    ++ts.submitted;
    metrics.Count(obs::metric_names::kServerQueriesSubmitted, "tenant",
                  tc.name);
    // Deadline-aware admission: refuse on arrival when the load model
    // (queued work draining across the pool, then one mean service time)
    // predicts a deadline miss.
    if (reject_on && deadline_ms > 0 && !protected_tenant(t) &&
        quota_ok(ts) &&
        ctl.WouldMissDeadline(inst.cls, queued_est_ms, deadline_ms)) {
      terminal(inst, engine::QueryOutcome::kRejected, /*core=*/-1);
      return false;
    }
    inst.est_ms = ctl.MeanServiceMs(inst.cls);
    queued_est_ms += inst.est_ms;
    queue.push_back(inst);
    journal_event(JournalEventType::kAdmit, inst);
    return true;
  };

  // Processes every arrival stream whose next event is due. Tenants are
  // visited in index order and closed-loop clients in client order, so
  // ties admit in a deterministic order.
  auto process_arrivals = [&]() {
    for (size_t t = 0; t < tenants_.size(); ++t) {
      const TenantConfig& tc = tenants_[t];
      TenantState& ts = tstates[t];
      if (tc.arrival_qps > 0) {
        while (ts.submitted < ts.cap && ts.next_open_arrival <= vtime) {
          submit(t, /*client=*/-1);
          ts.next_open_arrival +=
              MsToCycles(ExpDraw(ts.rng, 1000.0 / tc.arrival_qps), freq);
        }
        if (ts.submitted >= ts.cap) ts.next_open_arrival = kInf;
      } else {
        for (size_t c = 0; c < ts.client_wake.size(); ++c) {
          if (ts.client_wake[c] > vtime) continue;
          if (ts.submitted < ts.cap) {
            if (submit(t, static_cast<int>(c))) {
              ts.client_wake[c] = kInf;  // sleeps until its query drains
            }
            // Rejected: terminal() scheduled the client's next think wake.
          } else {
            ts.client_wake[c] = kInf;  // retired
          }
        }
      }
    }
  };

  // Damped fixed point (mirrors core::MultiCoreModel::Analyze): find the
  // bandwidth scale at which the running set's aggregate DRAM byte rate
  // fits the blended socket ceiling, then report each instance's
  // service-time total g at that scale.
  auto solve_epoch = [&](const std::vector<Instance*>& running,
                         std::vector<double>* g_out) -> double {
    double seq_bytes = 0;
    double rand_bytes = 0;
    for (const Instance* inst : running) {
      seq_bytes += classes_[inst->cls].bytes_seq;
      rand_bytes += classes_[inst->cls].bytes_rand;
    }
    const double class_bytes = seq_bytes + rand_bytes;
    const double seq_frac = class_bytes > 0 ? seq_bytes / class_bytes : 1.0;
    const double socket_bpc =
        seq_frac * cfg.SocketSeqBytesPerCycle() +
        (1.0 - seq_frac) * cfg.SocketRandBytesPerCycle();

    double scale = 1.0;
    g_out->assign(running.size(), 0.0);
    for (int iter = 0; iter < 40; ++iter) {
      double demand_bpc = 0;
      for (size_t i = 0; i < running.size(); ++i) {
        const QueryClass& cls = classes_[running[i]->cls];
        // A fault-plan slowdown dilates the class's service time, which
        // also thins its DRAM byte rate proportionally.
        (*g_out)[i] =
            model.Analyze(cls.counters, scale).total_cycles *
            running[i]->slow;
        demand_bpc += (cls.bytes_seq + cls.bytes_rand) / (*g_out)[i];
      }
      if (demand_bpc <= socket_bpc * 1.001) {
        if (scale >= 0.999 || demand_bpc >= socket_bpc * 0.98) break;
        // Undershooting after an earlier cut: relax (damped).
        scale = std::min(1.0, scale * 1.05);
        continue;
      }
      scale *= std::pow(socket_bpc / demand_bpc, 0.7);
    }
    return scale;
  };

  std::vector<Instance*> running;
  std::vector<double> g;
  uint64_t total_submitted = 0;
  uint64_t total_completed = 0;

  if (ck.enabled() && ck.resume) {
    // Recovery: restore the newest valid snapshot and re-enter the loop
    // at the exact top-of-loop point the snapshot was written at. The
    // crashed run's journal becomes the verification stream.
    StatusOr<RecoveredCheckpoint> recovered = LoadLatestCheckpoint(ck.dir);
    if (!recovered.ok()) return recovered.status();
    RecoveredCheckpoint& rec = recovered.value();
    if (rec.snapshot.config_fingerprint != config_fingerprint) {
      return Status::FailedPrecondition(
          "checkpoint in '" + ck.dir +
          "' was written under a different serving configuration");
    }
    if (rec.snapshot.class_digest != class_digest) {
      return Status::FailedPrecondition(
          "checkpoint in '" + ck.dir +
          "' was written against different class profiles");
    }
    if (rec.snapshot.state.tenants.size() != tenants_.size() ||
        rec.snapshot.state.classes.size() != classes_.size() ||
        rec.snapshot.state.slots.size() != static_cast<size_t>(cores)) {
      return Status::FailedPrecondition(
          "checkpoint in '" + ck.dir +
          "' does not match the tenant/class/core-pool shape");
    }
    if (rec.skipped_snapshots > 0) {
      std::fprintf(stderr,
                   "# recovery: skipped %d invalid snapshot(s) in %s "
                   "(last: %s)\n",
                   rec.skipped_snapshots, ck.dir.c_str(),
                   rec.skipped_note.c_str());
    }
    if (rec.journal_torn) {
      std::fprintf(stderr,
                   "# recovery: discarding torn journal tail after byte "
                   "%llu: %s\n",
                   static_cast<unsigned long long>(rec.journal_valid_bytes),
                   rec.journal_tail_error.c_str());
    }
    st = rec.snapshot.state;
    ctl.RestoreModels(std::move(rec.snapshot.admission_models));
    metrics.Restore(rec.snapshot.metrics);
    expected_events = std::move(rec.journal_payloads);
    Status opened = journal.OpenForAppend(
        ck.dir + "/" + JournalFileName(rec.snapshot.epoch_index),
        rec.journal_valid_bytes);
    if (!opened.ok()) return opened;
    std::fprintf(stderr,
                 "# resume: snapshot %d at virtual %.3f ms, %zu journal "
                 "record(s) to verify\n",
                 rec.snapshot.epoch_index, CyclesToMs(vtime, freq),
                 expected_events.size());
  } else {
    process_arrivals();  // admit anything due at virtual time zero
    sample_queue();
    // Snapshot 0 is written at loop entry, after the time-zero arrivals,
    // so every snapshot (including the first) captures a top-of-loop
    // state and resume re-enters uniformly.
    if (ck.enabled()) snapshot_pending = true;
  }

  while (true) {
    if (!ck_error.ok()) return ck_error;
    if (snapshot_pending) {
      snapshot_pending = false;
      Status snapped = write_snapshot();
      if (!snapped.ok()) return snapped;
    }
    if (ck.crash_at_ms > 0 && CyclesToMs(vtime, freq) >= ck.crash_at_ms) {
      // Deterministic self-kill for crash testing: no destructors, no
      // atexit handlers — the closest in-process stand-in for SIGKILL.
      std::fprintf(stderr, "# crash-at: exiting at virtual %.3f ms\n",
                   CyclesToMs(vtime, freq));
      std::_Exit(137);
    }
    // Promote due retries to the queue tail, in (ready, seq) order —
    // retried queries requeue like fresh work, deterministically.
    if (!retry_queue.empty()) {
      std::sort(retry_queue.begin(), retry_queue.end(),
                [](const Instance& a, const Instance& b) {
                  return a.retry_ready != b.retry_ready
                             ? a.retry_ready < b.retry_ready
                             : a.seq < b.seq;
                });
      size_t due = 0;
      while (due < retry_queue.size() &&
             retry_queue[due].retry_ready <= vtime) {
        Instance inst = retry_queue[due++];
        inst.est_ms = ctl.MeanServiceMs(inst.cls);
        queued_est_ms += inst.est_ms;
        queue.push_back(inst);
      }
      retry_queue.erase(retry_queue.begin(),
                        retry_queue.begin() + static_cast<long>(due));
    }

    // Schedule: fill free core slots from the FIFO queue. Pop-time
    // policies, in order: an already-expired deadline times the query
    // out, the shed policy drops predicted deadline misses, brown-out
    // swaps in the cheaper class, and the fault plan decides this
    // attempt's fate.
    for (Instance& slot : slots) {
      if (slot.tenant >= 0) continue;
      while (queue_head < queue.size()) {
        const uint32_t depth =
            static_cast<uint32_t>(queue.size() - queue_head);
        Instance inst = queue[queue_head++];
        queued_est_ms = std::max(0.0, queued_est_ms - inst.est_ms);
        const size_t t = static_cast<size_t>(inst.tenant);
        if (inst.deadline < kInf && vtime >= inst.deadline) {
          terminal(inst, engine::QueryOutcome::kTimedOut, /*core=*/-1);
          continue;
        }
        if (shed_on && inst.deadline < kInf && !protected_tenant(t) &&
            quota_ok(tstates[t]) &&
            ctl.WouldMissDeadline(inst.cls, /*queued_work_ms=*/0,
                                  CyclesToMs(inst.deadline - vtime, freq))) {
          terminal(inst, engine::QueryOutcome::kShed, /*core=*/-1);
          continue;
        }
        if (config_.brownout.queue_depth > 0 &&
            depth >= static_cast<uint32_t>(config_.brownout.queue_depth) &&
            classes_[inst.cls].downgrade >= 0) {
          inst.cls = static_cast<size_t>(classes_[inst.cls].downgrade);
          ++brownout_downgrades;
          metrics.Count(obs::metric_names::kServerBrownoutDowngrades,
                        "tenant", tenants_[t].name);
        }
        if (faults_on) {
          const uint64_t fault_epoch = static_cast<uint64_t>(
              CyclesToMs(vtime, freq) / config_.faults.epoch_ms);
          const FaultDecision draw = EvalFault(
              config_.faults, inst.tenant, fault_epoch,
              inst.seq * 1024 + static_cast<uint64_t>(inst.attempt));
          inst.will_fail = draw.fail;
          inst.slow = draw.slow_factor;
          if (draw.fail) {
            ++faults_injected;
            metrics.Count(obs::metric_names::kServerFaultsInjected,
                          "tenant", tenants_[t].name);
          }
          if (draw.slow_factor > 1.0) {
            ++slowdowns_injected;
            metrics.Count(obs::metric_names::kServerSlowdownsInjected,
                          "tenant", tenants_[t].name);
          }
        }
        inst.start = vtime;
        slot = inst;
        break;
      }
    }
    if (queue_head > 0 && queue_head == queue.size()) {
      queue.clear();
      queue_head = 0;
    }

    running.clear();
    for (Instance& slot : slots) {
      if (slot.tenant >= 0) running.push_back(&slot);
    }

    double next_arrival = kInf;
    for (size_t t = 0; t < tenants_.size(); ++t) {
      const TenantState& ts = tstates[t];
      if (ts.submitted >= ts.cap) continue;
      next_arrival = std::min(next_arrival, ts.next_open_arrival);
      for (const double wake : ts.client_wake) {
        next_arrival = std::min(next_arrival, wake);
      }
    }

    double next_retry = kInf;
    for (const Instance& inst : retry_queue) {
      next_retry = std::min(next_retry, inst.retry_ready);
    }

    if (running.empty()) {
      const double wake = std::min(next_arrival, next_retry);
      if (wake == kInf) break;  // drained: no work, no arrivals, no retries
      vtime = std::max(vtime, wake);
      roll_epochs(vtime);
      process_arrivals();
      sample_queue();
      continue;
    }

    const double scale = solve_epoch(running, &g);
    double next_completion = kInf;
    double next_deadline = kInf;
    for (size_t i = 0; i < running.size(); ++i) {
      // A cancelling query stops at its boundary fraction, not at drain.
      const double target =
          running[i]->cancel_remaining >= 0 ? running[i]->cancel_remaining : 0;
      next_completion = std::min(
          next_completion,
          vtime + (running[i]->remaining - target) * g[i]);
      // A running query crossing its deadline is an event: it must be
      // marked for boundary cancellation at that instant.
      if (running[i]->cancel_remaining < 0 &&
          running[i]->deadline < kInf && running[i]->deadline > vtime) {
        next_deadline = std::min(next_deadline, running[i]->deadline);
      }
    }
    const double next_event = std::min(
        std::min(next_completion, next_arrival),
        std::min(next_deadline, next_retry));
    const double dt = next_event - vtime;
    if (dt > 0) {
      double rate_bpc = 0;
      for (size_t i = 0; i < running.size(); ++i) {
        const QueryClass& cls = classes_[running[i]->cls];
        rate_bpc += (cls.bytes_seq + cls.bytes_rand) / g[i];
        running[i]->remaining -= dt / g[i];
        running[i]->scale_cycles += scale * dt;
        running[i]->run_cycles += dt;
      }
      total_bytes += rate_bpc * dt;
      peak_gbps = std::max(peak_gbps, rate_bpc * freq);
      if (scale < 0.999) saturated = true;
    }
    vtime = next_event;
    roll_epochs(vtime);

    // Deadline crossings: a running query past its deadline is marked to
    // cancel at the next top-level operator-region boundary of its class —
    // it keeps running (and contending) until its progress reaches that
    // fraction. A boundary of 1.0 means the query finishes late instead.
    for (Instance& slot : slots) {
      if (slot.tenant < 0 || slot.cancel_remaining >= 0) continue;
      if (slot.deadline == kInf || vtime < slot.deadline) continue;
      const double progress = 1.0 - slot.remaining;
      double boundary = 1.0;
      for (const double f : classes_[slot.cls].cancel_fractions) {
        if (f > progress + kDoneEps) {
          boundary = f;
          break;
        }
      }
      slot.cancel_remaining = 1.0 - boundary;
    }

    // Completions first (slot order), then arrivals at the same instant.
    for (size_t slot_index = 0; slot_index < slots.size(); ++slot_index) {
      Instance& slot = slots[slot_index];
      if (slot.tenant < 0) continue;
      const bool done = slot.remaining <= kDoneEps;
      const bool cancelled =
          slot.cancel_remaining >= 0 &&
          slot.remaining <= slot.cancel_remaining + kDoneEps;
      if (!done && !cancelled) continue;
      const size_t t = static_cast<size_t>(slot.tenant);
      const TenantConfig& tc = tenants_[t];
      TenantState& ts = tstates[t];
      if (done && slot.will_fail) {
        // The attempt ran to completion and then failed transiently (the
        // full contention cost was paid). Retry with backoff if budget
        // remains, else the query fails terminally.
        if (slot.attempt <= config_.retry.max_retries) {
          ++ts.retries;
          metrics.Count(obs::metric_names::kServerRetriesTotal, "tenant",
                        tc.name);
          Rng jitter_rng(Mix64(config_.faults.seed ^ kBackoffSalt) +
                         slot.seq * 1024 +
                         static_cast<uint64_t>(slot.attempt));
          const double backoff_ms = RetryBackoffMs(
              config_.retry, slot.attempt, jitter_rng.NextDouble());
          metrics.Observe(obs::metric_names::kServerBackoffMs, "tenant",
                          tc.name, backoff_ms);
          Instance again = slot;
          ++again.attempt;
          again.remaining = 1.0;
          again.cancel_remaining = -1;
          again.will_fail = false;
          again.slow = 1.0;
          again.scale_cycles = 0;
          again.run_cycles = 0;
          again.retry_ready = vtime + MsToCycles(backoff_ms, freq);
          retry_queue.push_back(again);
          journal_event(JournalEventType::kRetry, again);
        } else {
          terminal(slot, engine::QueryOutcome::kFailed,
                   static_cast<int>(slot_index));
        }
        slot = Instance{};
        continue;
      }
      if (!done && cancelled) {
        terminal(slot, engine::QueryOutcome::kTimedOut,
                 static_cast<int>(slot_index));
        slot = Instance{};
        continue;
      }
      const double latency_ms = CyclesToMs(vtime - slot.arrival, freq);
      ts.latencies_ms.push_back(latency_ms);
      const size_t bucket = HistBucket(latency_ms);
      if (ts.histogram.size() <= bucket) ts.histogram.resize(bucket + 1, 0);
      ++ts.histogram[bucket];
      ++ts.completed;
      engine_latencies[classes_[slot.cls].engine].push_back(latency_ms);
      ClassStats& cs = cstats[slot.cls];
      ++cs.executions;
      cs.service_cycles += vtime - slot.start;
      cs.scale_cycles += slot.scale_cycles;
      cs.run_cycles += slot.run_cycles;
      all_latencies.push_back(latency_ms);
      if (epoch_cycles > 0) {
        acc.lat.push_back(latency_ms);
        acc.tenant_lat[tc.name].push_back(latency_ms);
        acc.class_lat[classes_[slot.cls].label].push_back(latency_ms);
      }
      ctl.RecordCompletion(slot.cls, CyclesToMs(vtime - slot.start, freq));
      metrics.Count(obs::metric_names::kServerQueriesCompleted, "tenant",
                    tc.name);
      metrics.Observe(obs::metric_names::kServerLatencyMs, "tenant", tc.name,
                      latency_ms);
      metrics.Observe(obs::metric_names::kServerQueueWaitMs, "tenant",
                      tc.name, CyclesToMs(slot.start - slot.arrival, freq));
      journal_event(JournalEventType::kComplete, slot);
      if (slot.sampled) {
        obs::QuerySpan span;
        span.seq = slot.seq;
        span.tenant = tc.name;
        span.cls = classes_[slot.cls].label;
        span.arrival_ms = CyclesToMs(slot.arrival, freq);
        span.start_ms = CyclesToMs(slot.start, freq);
        span.end_ms = CyclesToMs(vtime, freq);
        span.core = static_cast<int>(slot_index);
        span.attempts = static_cast<uint32_t>(slot.attempt);
        spans.push_back(std::move(span));
      }
      if (slot.client >= 0) {
        ts.client_wake[static_cast<size_t>(slot.client)] =
            vtime + MsToCycles(ExpDraw(ts.rng, tc.think_ms), freq);
      }
      slot = Instance{};  // frees the slot (tenant = -1)
    }
    process_arrivals();
    sample_queue();
  }

  if (!ck_error.ok()) return ck_error;
  if (ck.enabled()) {
    if (expected_pos < expected_events.size()) {
      return Status::Internal(
          "journal replay incomplete: " +
          std::to_string(expected_events.size() - expected_pos) +
          " journaled record(s) were never re-derived");
    }
    Status closed = journal.Close();
    if (!closed.ok()) return closed;
  }

  // --- assemble the record -------------------------------------------
  // Close the trailing partial epoch so late completions are windowed.
  if (epoch_cycles > 0 && (vtime > epoch_start || epochs.empty())) {
    close_epoch(vtime);
  }

  ServeResult result;
  obs::ServerRecord& record = result.record;
  record.enabled = true;
  record.cores = cores;
  record.vtime_ms = CyclesToMs(vtime, freq);
  const double vtime_s = record.vtime_ms / 1000.0;
  for (size_t t = 0; t < tenants_.size(); ++t) {
    TenantState& ts = tstates[t];
    total_submitted += ts.submitted;
    total_completed += ts.completed;
    obs::TenantRecord rec;
    rec.name = tenants_[t].name;
    rec.engine = tenants_[t].engine;
    rec.submitted = ts.submitted;
    rec.completed = ts.completed;
    rec.admitted = ts.submitted - ts.rejected;
    rec.rejected = ts.rejected;
    rec.shed = ts.shed;
    rec.timed_out = ts.timed_out;
    rec.failed = ts.failed;
    rec.retries = ts.retries;
    // The admission accounting invariant: every admitted query reaches
    // exactly one terminal disposition.
    UOLAP_CHECK_MSG(
        rec.admitted == rec.completed + rec.shed + rec.timed_out + rec.failed,
        "serving accounting: admitted != completed + shed + timed_out + "
        "failed");
    record.admitted += rec.admitted;
    record.rejected += rec.rejected;
    record.shed += rec.shed;
    record.timed_out += rec.timed_out;
    record.failed += rec.failed;
    record.retries += rec.retries;
    std::vector<double> sorted = ts.latencies_ms;
    std::sort(sorted.begin(), sorted.end());
    double sum = 0;
    for (const double l : sorted) sum += l;
    rec.mean_ms = sorted.empty() ? 0 : sum / static_cast<double>(sorted.size());
    rec.p50_ms = Percentile(sorted, 0.50);
    rec.p95_ms = Percentile(sorted, 0.95);
    rec.p99_ms = Percentile(sorted, 0.99);
    rec.throughput_qps =
        vtime_s > 0 ? static_cast<double>(ts.completed) / vtime_s : 0;
    rec.latency_histogram = std::move(ts.histogram);
    record.tenants.push_back(std::move(rec));
  }
  record.submitted = total_submitted;
  record.completed = total_completed;
  record.faults_injected = faults_injected;
  record.slowdowns_injected = slowdowns_injected;
  record.brownout_downgrades = brownout_downgrades;
  record.shed_policy = std::string(ShedPolicyName(adm.policy));
  record.fault_plan = config_.faults.ToString();
  record.throughput_qps =
      vtime_s > 0 ? static_cast<double>(total_completed) / vtime_s : 0;
  record.avg_socket_gbps = vtime > 0 ? total_bytes * freq / vtime : 0;
  record.peak_socket_gbps = peak_gbps;
  record.saturated = saturated;
  std::sort(all_latencies.begin(), all_latencies.end());
  record.p50_ms = Percentile(all_latencies, 0.50);
  record.p95_ms = Percentile(all_latencies, 0.95);
  record.p99_ms = Percentile(all_latencies, 0.99);

  for (auto& [key, latencies] : engine_latencies) {
    std::sort(latencies.begin(), latencies.end());
    obs::EngineLoadRecord rec;
    rec.engine = key;
    rec.completed = latencies.size();
    rec.p50_ms = Percentile(latencies, 0.50);
    rec.p95_ms = Percentile(latencies, 0.95);
    rec.p99_ms = Percentile(latencies, 0.99);
    rec.throughput_qps =
        vtime_s > 0 ? static_cast<double>(latencies.size()) / vtime_s : 0;
    record.engines.push_back(std::move(rec));
  }

  for (size_t i = 0; i < classes_.size(); ++i) {
    const QueryClass& cls = classes_[i];
    const ClassStats& cs = cstats[i];
    obs::QueryClassRecord rec;
    rec.label = cls.label;
    rec.engine = cls.engine;
    rec.executions = cs.executions;
    rec.solo_ms = cls.solo.time_ms;
    rec.corun_ms =
        cs.executions > 0
            ? CyclesToMs(cs.service_cycles /
                             static_cast<double>(cs.executions),
                         freq)
            : 0;
    rec.avg_bw_scale =
        cs.run_cycles > 0 ? cs.scale_cycles / cs.run_cycles : 1.0;
    rec.solo_dcache_frac = cls.solo.cycles.Frac(cls.solo.cycles.dcache);
    const core::ProfileResult corun =
        model.Analyze(cls.counters, rec.avg_bw_scale);
    rec.corun_dcache_frac = corun.cycles.Frac(corun.cycles.dcache);
    record.classes.push_back(rec);

    result.class_runs.push_back(cls.solo_run);
    if (cs.executions > 0 && rec.avg_bw_scale < 0.999) {
      // Re-analysis of the solo profile at the contention scale the class
      // actually observed — the co-run Top-Down view of the same counters.
      obs::RunRecord corun_run = cls.solo_run;
      corun_run.label += " [corun]";
      corun_run.bw_scale = rec.avg_bw_scale;
      corun_run.cores[0].whole = corun;
      obs::AnalyzeTree(cfg, &corun_run.cores[0].regions, rec.avg_bw_scale);
      corun_run.makespan_cycles = corun.total_cycles;
      corun_run.time_ms = corun.time_ms;
      corun_run.socket_bandwidth_gbps = corun.bandwidth_gbps;
      // The audit covered the solo machine state, not this re-analysis.
      corun_run.audited = false;
      corun_run.audit_checks = 0;
      corun_run.violations.clear();
      result.class_runs.push_back(std::move(corun_run));
    }
  }

  record.queue_timeline = std::move(timeline);

  // Serving telemetry: epoch windows, sampled spans (admission order),
  // SLO verdicts, and the run-level metric rollups.
  record.epoch_ms = config_.epoch_ms;
  record.epochs = std::move(epochs);
  record.trace_sample_n = config_.trace_sample_n;
  std::sort(spans.begin(), spans.end(),
            [](const obs::QuerySpan& a, const obs::QuerySpan& b) {
              return a.seq < b.seq;
            });
  record.spans = std::move(spans);
  record.slos = config_.slos;
  record.slo_results = obs::EvaluateSlos(config_.slos, record);

  namespace mn = obs::metric_names;
  metrics.SetGauge(mn::kServerVtimeMs, record.vtime_ms);
  metrics.MaxGauge(mn::kServerSocketGbpsPeak, record.peak_socket_gbps);
  metrics.MaxGauge(mn::kServerQueueDepthPeak,
                   static_cast<double>(peak_queued));
  metrics.Count(mn::kServerEpochsTotal, record.epochs.size());
  metrics.Count(mn::kServerSpansRecorded, record.spans.size());
  for (const obs::SloResult& r : record.slo_results) {
    if (!r.pass) {
      metrics.Count(mn::kServerSloViolations, "slo", r.spec.ToString());
    }
  }
  return result;
}

}  // namespace uolap::server
