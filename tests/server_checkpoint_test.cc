// Tests of crash-consistent serving (DESIGN.md §10). The headline test
// forks three children off one parent image — an uninterrupted run, a
// run killed by --crash-at mid-flight, and a resumed run — and asserts
// the resumed child's profile JSON is byte-identical to the
// uninterrupted one. Around it: CRC32C known-answer vectors, journal
// framing and torn-tail tolerance, snapshot encode/decode round-trips,
// bit-exact MetricsRegistry restore, and the recovery failure modes
// (missing directory, corrupt newest snapshot, nothing valid at all).

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <array>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/crc32c.h"
#include "common/file_io.h"
#include "engine/query_spec.h"
#include "engine/registry.h"
#include "harness/engines.h"
#include "obs/metrics.h"
#include "obs/profile_export.h"
#include "server/checkpoint.h"
#include "server/journal.h"
#include "server/serving.h"
#include "tpch/dbgen.h"

namespace uolap::server {
namespace {

std::string TempDir() {
  char tmpl[] = "/tmp/uolap_ckpt_test_XXXXXX";
  const char* dir = mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir;
}

// --- CRC32C ----------------------------------------------------------------

TEST(Crc32cTest, KnownAnswerVectors) {
  // The canonical Castagnoli check value (RFC 3720 appendix B.4 et al.).
  EXPECT_EQ(Crc32c(std::string_view("123456789")), 0xE3069283u);
  EXPECT_EQ(Crc32c(std::string_view("")), 0u);
  // 32 zero bytes, another published vector.
  const std::string zeros(32, '\0');
  EXPECT_EQ(Crc32c(std::string_view(zeros)), 0x8A9136AAu);
}

TEST(Crc32cTest, IncrementalEqualsOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const uint32_t whole = Crc32c(std::string_view(data));
  uint32_t chained = 0;
  for (size_t i = 0; i < data.size(); i += 7) {
    const size_t n = std::min<size_t>(7, data.size() - i);
    chained = Crc32c(data.data() + i, n, chained);
  }
  EXPECT_EQ(chained, whole);
}

// --- journal framing -------------------------------------------------------

class JournalTest : public ::testing::Test {
 protected:
  void SetUp() override { path_ = TempDir() + "/j.wal"; }
  std::string path_;
};

TEST_F(JournalTest, RoundTripsRecords) {
  JournalWriter w;
  ASSERT_TRUE(w.Create(path_).ok());
  const std::vector<std::string> records = {
      "alpha", "", std::string("b\0c\xff" "d", 5), std::string(1000, 'x')};
  for (const std::string& r : records) {
    ASSERT_TRUE(w.AppendRecord(r).ok());
  }
  ASSERT_TRUE(w.Close().ok());

  const auto read = ReadJournal(path_);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value().payloads, records);
  EXPECT_FALSE(read.value().torn_tail);
  const auto size = FileSize(path_);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(read.value().valid_bytes, size.value());
}

TEST_F(JournalTest, MissingFileIsNotFound) {
  const auto read = ReadJournal(path_);
  EXPECT_EQ(read.status().code(), StatusCode::kNotFound);
}

TEST_F(JournalTest, TornTailIsDetectedNotReplayed) {
  JournalWriter w;
  ASSERT_TRUE(w.Create(path_).ok());
  ASSERT_TRUE(w.AppendRecord("keep-me").ok());
  ASSERT_TRUE(w.AppendRecord("and-me").ok());
  ASSERT_TRUE(w.Close().ok());
  const uint64_t clean_bytes = FileSize(path_).value();

  // A kill mid-append leaves a truncated frame: garbage header bytes.
  std::FILE* f = std::fopen(path_.c_str(), "ab");
  ASSERT_NE(f, nullptr);
  std::fputs("torn", f);
  std::fclose(f);

  const auto read = ReadJournal(path_);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value().payloads,
            (std::vector<std::string>{"keep-me", "and-me"}));
  EXPECT_TRUE(read.value().torn_tail);
  EXPECT_FALSE(read.value().tail_error.empty());
  EXPECT_EQ(read.value().valid_bytes, clean_bytes);
}

TEST_F(JournalTest, CorruptPayloadCrcIsDetected) {
  JournalWriter w;
  ASSERT_TRUE(w.Create(path_).ok());
  ASSERT_TRUE(w.AppendRecord("first").ok());
  ASSERT_TRUE(w.AppendRecord("second").ok());
  ASSERT_TRUE(w.Close().ok());

  // Flip one byte inside the *last* frame's payload.
  auto content = ReadFileToString(path_);
  ASSERT_TRUE(content.ok());
  std::string bytes = content.value();
  bytes[bytes.size() - 1] ^= 0x40;
  std::FILE* f = std::fopen(path_.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);

  const auto read = ReadJournal(path_);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value().payloads, (std::vector<std::string>{"first"}));
  EXPECT_TRUE(read.value().torn_tail);
  EXPECT_NE(read.value().tail_error.find("CRC"), std::string::npos);
}

TEST_F(JournalTest, AbsurdFrameLengthIsCorruptionNotAllocation) {
  std::FILE* f = std::fopen(path_.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const uint32_t huge = 0xFFFFFFFFu;
  std::fwrite(&huge, sizeof(huge), 1, f);
  std::fwrite(&huge, sizeof(huge), 1, f);
  std::fclose(f);
  const auto read = ReadJournal(path_);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read.value().payloads.empty());
  EXPECT_TRUE(read.value().torn_tail);
  EXPECT_NE(read.value().tail_error.find("frame limit"), std::string::npos);
}

TEST_F(JournalTest, OpenForAppendTruncatesTornTail) {
  JournalWriter w;
  ASSERT_TRUE(w.Create(path_).ok());
  ASSERT_TRUE(w.AppendRecord("one").ok());
  ASSERT_TRUE(w.Close().ok());
  const uint64_t clean_bytes = FileSize(path_).value();
  std::FILE* f = std::fopen(path_.c_str(), "ab");
  ASSERT_NE(f, nullptr);
  std::fputs("xxxx-torn-tail", f);
  std::fclose(f);

  JournalWriter again;
  ASSERT_TRUE(again.OpenForAppend(path_, clean_bytes).ok());
  ASSERT_TRUE(again.AppendRecord("two").ok());
  ASSERT_TRUE(again.Close().ok());

  const auto read = ReadJournal(path_);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value().payloads, (std::vector<std::string>{"one", "two"}));
  EXPECT_FALSE(read.value().torn_tail);
}

// --- journal events --------------------------------------------------------

TEST(JournalEventTest, EncodeDecodeRoundTrips) {
  JournalEvent ev;
  ev.type = JournalEventType::kTimeout;
  ev.seq = 0x0123456789ABCDEFull;
  ev.tenant = 3;
  ev.attempt = 2;
  ev.vtime_ms = 12.34375;
  const std::string payload = EncodeJournalEvent(ev);
  const auto back = DecodeJournalEvent(payload);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), ev);
}

TEST(JournalEventTest, RejectsGarbage) {
  EXPECT_FALSE(DecodeJournalEvent("").ok());
  EXPECT_FALSE(DecodeJournalEvent("short").ok());
  std::string payload = EncodeJournalEvent(JournalEvent{});
  payload[0] = 99;  // no such event type
  EXPECT_FALSE(DecodeJournalEvent(payload).ok());
  payload.push_back('\0');  // trailing junk
  EXPECT_FALSE(DecodeJournalEvent(payload).ok());
}

// --- snapshot encode/decode ------------------------------------------------

CheckpointSnapshot SampleSnapshot() {
  CheckpointSnapshot snap;
  snap.config_fingerprint = 0xDEADBEEFCAFEF00Dull;
  snap.class_digest = 0x1234ABCDu;
  snap.epoch_index = 7;
  snap.freq_ghz = 2.2;
  snap.state.vtime = 1.5e9;
  snap.state.queue_head = 0;
  snap.state.tenants.resize(2);
  snap.state.tenants[0].submitted = 11;
  snap.state.tenants[0].zipf_cdf = {0.5, 1.0};
  snap.state.tenants[0].latencies_ms = {1.25, 2.5};
  snap.state.tenants[1].rng = Rng(99);
  snap.state.classes.resize(1);
  snap.state.classes[0].executions = 4;
  QueryInstance inst;
  inst.tenant = 1;
  inst.cls = 0;
  inst.seq = 42;
  snap.state.queue.push_back(inst);
  snap.state.slots.resize(2);
  snap.state.slots[0] = inst;  // tenant >= 0 marks the slot occupied
  snap.admission_models.resize(1);
  snap.admission_models[0].est_ms = 3.25;
  snap.admission_models[0].count = 9;
  obs::MetricsRegistry reg;
  reg.Count("server.testing_total", 5);
  reg.Observe("server.testing_ms", 1.75);
  snap.metrics = reg.Snapshot();
  return snap;
}

TEST(SnapshotTest, EncodeDecodeRoundTripsBitExactly) {
  const CheckpointSnapshot snap = SampleSnapshot();
  const std::string bytes = EncodeSnapshot(snap);
  const auto back = DecodeSnapshot(bytes);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  // Re-encoding the decoded snapshot must reproduce the input byte for
  // byte — this covers every serialized field at once.
  EXPECT_EQ(EncodeSnapshot(back.value()), bytes);
  EXPECT_EQ(back.value().epoch_index, 7);
  EXPECT_EQ(back.value().state.tenants.size(), 2u);
  EXPECT_EQ(back.value().metrics, snap.metrics);
}

TEST(SnapshotTest, DetectsCorruptionTruncationAndWrongMagic) {
  const std::string bytes = EncodeSnapshot(SampleSnapshot());

  std::string flipped = bytes;
  flipped[bytes.size() / 2] ^= 0x01;
  EXPECT_FALSE(DecodeSnapshot(flipped).ok());

  EXPECT_FALSE(DecodeSnapshot(bytes.substr(0, bytes.size() - 3)).ok());
  EXPECT_FALSE(DecodeSnapshot("").ok());

  std::string wrong_magic = bytes;
  wrong_magic[0] = 'X';
  EXPECT_FALSE(DecodeSnapshot(wrong_magic).ok());
}

// --- MetricsRegistry::Restore ----------------------------------------------

TEST(MetricsRestoreTest, SnapshotAfterRestoreIsIdentical) {
  obs::MetricsRegistry reg;
  reg.Count("server.queries_total", 3);
  reg.Count("server.queries_total", "tenant", "t0", 2);
  reg.SetGauge("server.depth", 4.5);
  // Values with fractional micro-parts: Restore must keep the
  // fixed-point sum_micro bit for bit, not re-round through doubles.
  reg.Observe("server.latency_ms", 0.123456);
  reg.Observe("server.latency_ms", 7.654321);
  const obs::MetricsSnapshot snap = reg.Snapshot();

  obs::MetricsRegistry fresh;
  fresh.Count("server.other_total", 1);  // must be dropped by Restore
  fresh.Restore(snap);
  EXPECT_EQ(fresh.Snapshot(), snap);

  // And restored registries keep accumulating correctly.
  fresh.Count("server.queries_total", 1);
  const obs::MetricsSnapshot after = fresh.Snapshot();
  EXPECT_EQ(after.Find("server.queries_total")->series[0].counter, 4u);
}

// --- end-to-end kill and resume --------------------------------------------

class CheckpointServeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    tpch::DbGen gen(42);
    db_ = new tpch::Database(std::move(gen.Generate(0.01)).value());
    registry_ = new engine::EngineRegistry(*db_);
    harness::RegisterBuiltinEngines(*registry_);
  }

  static ServerConfig BaseConfig() {
    ServerConfig config;
    config.machine = core::MachineConfig::Broadwell();
    config.cores = 2;
    config.default_max_queries = 8;
    config.epoch_ms = 1.0;
    return config;
  }

  static void AddTenants(Server& server) {
    TenantConfig t;
    t.name = "scans";
    t.engine = "typer";
    t.catalog = {engine::QuerySpec::Projection(4),
                 engine::QuerySpec::Q6(engine::MakeQ6Params())};
    t.zipf_s = 0.5;
    t.concurrency = 3;
    t.think_ms = 0.05;
    t.seed = 7;
    server.AddTenant(t);
    TenantConfig u;
    u.name = "adhoc";
    u.engine = "rowstore";
    u.catalog = {engine::QuerySpec::Projection(2)};
    u.arrival_qps = 400;
    u.seed = 8;
    server.AddTenant(u);
  }

  struct ChildSpec {
    CheckpointConfig ckpt;
    std::string json_path;
    /// When non-empty the child also writes its final virtual clock (ms)
    /// as text, so tests can prove a crash point landed mid-run.
    std::string vtime_path;
  };

  /// Forks one serving child per spec, all back-to-back off a single
  /// parent image, each parked on a pipe until released. The solo class
  /// simulations are address-sensitive (real buffers feed the cache
  /// model), so children whose outputs are byte-compared must inherit an
  /// identical heap layout — forking them before the parent touches the
  /// heap again guarantees that; sequential fork-per-run does not.
  class ChildGroup {
   public:
    explicit ChildGroup(std::vector<ChildSpec> specs)
        : specs_(std::move(specs)),
          pids_(specs_.size(), -1),
          ran_(specs_.size(), false),
          pipes_(specs_.size(), std::array<int, 2>{-1, -1}) {
      for (auto& p : pipes_) {
        if (pipe(p.data()) != 0) {
          ADD_FAILURE() << "pipe() failed";
          return;
        }
      }
      // No heap allocation between here and the last fork.
      for (size_t i = 0; i < specs_.size(); ++i) {
        const pid_t pid = fork();
        if (pid == 0) {
          char go = 0;
          while (read(pipes_[i][0], &go, 1) != 1) {
          }
          ChildMain(specs_[i]);
        }
        pids_[i] = pid;
      }
    }

    ~ChildGroup() {
      for (size_t i = 0; i < pids_.size(); ++i) {
        if (pids_[i] > 0 && !ran_[i]) {
          kill(pids_[i], SIGKILL);
          waitpid(pids_[i], nullptr, 0);
        }
        if (pipes_[i][0] >= 0) close(pipes_[i][0]);
        if (pipes_[i][1] >= 0) close(pipes_[i][1]);
      }
    }

    /// Releases child `i`, waits for it, and returns its exit code.
    int Run(size_t i) {
      EXPECT_LT(i, pids_.size());
      EXPECT_FALSE(ran_[i]);
      ran_[i] = true;
      EXPECT_EQ(write(pipes_[i][1], "g", 1), 1);
      int status = 0;
      EXPECT_EQ(waitpid(pids_[i], &status, 0), pids_[i]);
      return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    }

   private:
    [[noreturn]] static void ChildMain(const ChildSpec& spec) {
      ServerConfig config = BaseConfig();
      config.checkpoint = spec.ckpt;
      obs::MetricsRegistry metrics;
      config.metrics = &metrics;
      Server server(config, *registry_);
      AddTenants(server);
      StatusOr<ServeResult> run = server.TryRun();
      if (!run.ok()) {
        std::fprintf(stderr, "child: %s\n", run.status().ToString().c_str());
        std::_Exit(3);
      }
      obs::ProfileSession session;
      session.bench = "server_checkpoint_test";
      session.machine = "sim-broadwell-2.2GHz";
      session.freq_ghz = config.machine.freq_ghz;
      session.scale_factor = 0.01;
      session.seed = 42;
      session.server = run.value().record;
      for (obs::RunRecord& r : run.value().class_runs) {
        session.runs.push_back(std::move(r));
      }
      session.metrics = metrics.Snapshot();
      const Status written =
          obs::WriteTextFile(spec.json_path, obs::ProfileToJson(session));
      if (!written.ok()) std::_Exit(4);
      if (!spec.vtime_path.empty()) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.17g\n",
                      run.value().record.vtime_ms);
        if (!obs::WriteTextFile(spec.vtime_path, buf).ok()) std::_Exit(4);
      }
      std::_Exit(0);
    }

    std::vector<ChildSpec> specs_;
    std::vector<pid_t> pids_;
    std::vector<bool> ran_;
    std::vector<std::array<int, 2>> pipes_;
  };

  /// Single-child convenience for tests without byte comparisons.
  static int RunChild(const CheckpointConfig& ckpt,
                      const std::string& json_path,
                      const std::string& vtime_path = "") {
    ChildGroup group({{ckpt, json_path, vtime_path}});
    return group.Run(0);
  }

  static std::string MustRead(const std::string& path) {
    auto content = ReadFileToString(path);
    EXPECT_TRUE(content.ok()) << content.status().ToString();
    return content.ok() ? content.value() : std::string();
  }

  static tpch::Database* db_;
  static engine::EngineRegistry* registry_;
};

tpch::Database* CheckpointServeTest::db_ = nullptr;
engine::EngineRegistry* CheckpointServeTest::registry_ = nullptr;

TEST_F(CheckpointServeTest, KillAndResumeIsByteIdentical) {
  const std::string tmp = TempDir();

  // A: uninterrupted, checkpointing on. B: the same run killed mid-flight
  // by --crash-at. C: resume from B's checkpoint directory and finish.
  CheckpointConfig a;
  a.dir = tmp + "/ck_a";
  a.every_epochs = 2;
  CheckpointConfig b;
  b.dir = tmp + "/ck_b";
  b.every_epochs = 2;
  b.crash_at_ms = 40.0;
  CheckpointConfig c;
  c.dir = tmp + "/ck_b";
  c.every_epochs = 2;
  c.resume = true;
  ChildGroup group({{a, tmp + "/a.json", tmp + "/a.vtime"},
                    {b, tmp + "/b.json", ""},
                    {c, tmp + "/c.json", ""}});

  ASSERT_EQ(group.Run(0), 0);
  // A reports its final vtime, proving B's kill landed mid-run.
  const double total_ms = std::stod(MustRead(tmp + "/a.vtime"));
  ASSERT_GT(total_ms, b.crash_at_ms + 1.0);
  ASSERT_EQ(group.Run(1), 137);
  ASSERT_EQ(group.Run(2), 0);

  const std::string uninterrupted = MustRead(tmp + "/a.json");
  const std::string resumed = MustRead(tmp + "/c.json");
  ASSERT_FALSE(uninterrupted.empty());
  EXPECT_EQ(resumed, uninterrupted)
      << "resumed profile JSON must be byte-identical to the "
         "uninterrupted run's";
  // The killed child must not have produced a profile at all.
  EXPECT_EQ(ReadFileToString(tmp + "/b.json").status().code(),
            StatusCode::kNotFound);
}

TEST_F(CheckpointServeTest, ResumeDiscardsTornJournalTailLoudly) {
  const std::string tmp = TempDir();
  CheckpointConfig ref;
  ref.dir = tmp + "/ck_a";
  ref.every_epochs = 4;
  CheckpointConfig crash;
  crash.dir = tmp + "/ck_b";
  crash.every_epochs = 4;
  crash.crash_at_ms = 1.6;  // between epoch-boundary snapshots
  CheckpointConfig resume;
  resume.dir = crash.dir;
  resume.every_epochs = 4;
  resume.resume = true;
  ChildGroup group({{ref, tmp + "/a.json", ""},
                    {crash, tmp + "/b.json", ""},
                    {resume, tmp + "/c.json", ""}});

  ASSERT_EQ(group.Run(0), 0);
  ASSERT_EQ(group.Run(1), 137);

  // Corrupt the tail of the journal paired with the newest snapshot —
  // the bytes a real kill could have half-written.
  const auto summary = InspectCheckpointDir(crash.dir);
  ASSERT_TRUE(summary.ok());
  ASSERT_GE(summary.value().resume_index, 0);
  const std::string active =
      crash.dir + "/" + JournalFileName(summary.value().resume_index);
  std::FILE* f = std::fopen(active.c_str(), "ab");
  ASSERT_NE(f, nullptr);
  std::fputs("GARBAGE-TAIL", f);
  std::fclose(f);

  ASSERT_EQ(group.Run(2), 0);
  EXPECT_EQ(MustRead(tmp + "/c.json"), MustRead(tmp + "/a.json"));
}

TEST_F(CheckpointServeTest, ResumeSkipsCorruptNewestSnapshot) {
  const std::string tmp = TempDir();
  CheckpointConfig base;
  base.dir = tmp + "/ck";
  base.every_epochs = 2;
  CheckpointConfig resume = base;
  resume.resume = true;
  ChildGroup group({{base, tmp + "/a.json", ""}, {resume, tmp + "/c.json", ""}});
  ASSERT_EQ(group.Run(0), 0);

  const auto summary = InspectCheckpointDir(base.dir);
  ASSERT_TRUE(summary.ok());
  ASSERT_GE(summary.value().snapshots.size(), 2u);
  // Corrupt the newest snapshot's interior; recovery must fall back to
  // the next older one and still converge to the identical profile.
  const std::string newest =
      base.dir + "/" + SnapshotFileName(summary.value().resume_index);
  std::FILE* f = std::fopen(newest.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 64, SEEK_SET);
  std::fputs("\xde\xad\xbe\xef", f);
  std::fclose(f);

  ASSERT_EQ(group.Run(1), 0);
  EXPECT_EQ(MustRead(tmp + "/c.json"), MustRead(tmp + "/a.json"));
}

TEST_F(CheckpointServeTest, ResumeFailsCleanlyWithoutACheckpoint) {
  const std::string tmp = TempDir();
  ServerConfig config = BaseConfig();
  config.checkpoint.dir = tmp + "/empty";
  config.checkpoint.resume = true;
  obs::MetricsRegistry metrics;
  config.metrics = &metrics;
  Server server(config, *registry_);
  AddTenants(server);
  const StatusOr<ServeResult> run = server.TryRun();
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kNotFound);
}

TEST_F(CheckpointServeTest, ResumeRejectsAMismatchedConfiguration) {
  const std::string tmp = TempDir();
  CheckpointConfig base;
  base.dir = tmp + "/ck";
  base.every_epochs = 2;
  base.crash_at_ms = 1.6;
  ASSERT_EQ(RunChild(base, tmp + "/a.json"), 137);

  // Same directory, different serving configuration: recovery must
  // refuse rather than resume into divergence.
  ServerConfig config = BaseConfig();
  config.default_max_queries = 16;  // fingerprint-relevant change
  config.checkpoint.dir = base.dir;
  config.checkpoint.resume = true;
  obs::MetricsRegistry metrics;
  config.metrics = &metrics;
  Server server(config, *registry_);
  AddTenants(server);
  const StatusOr<ServeResult> run = server.TryRun();
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(CheckpointServeTest, InspectSummarizesTheDirectory) {
  const std::string tmp = TempDir();
  CheckpointConfig base;
  base.dir = tmp + "/ck";
  base.every_epochs = 2;
  ASSERT_EQ(RunChild(base, tmp + "/a.json"), 0);

  const auto summary = InspectCheckpointDir(base.dir);
  ASSERT_TRUE(summary.ok());
  EXPECT_GE(summary.value().snapshots.size(), 1u);
  EXPECT_GE(summary.value().resume_index, 0);
  for (const SnapshotFileInfo& s : summary.value().snapshots) {
    EXPECT_TRUE(s.valid) << s.error;
    EXPECT_GT(s.bytes, 0u);
  }
  for (const JournalFileInfo& j : summary.value().journals) {
    EXPECT_FALSE(j.torn_tail) << j.tail_error;
  }
  EXPECT_EQ(InspectCheckpointDir(tmp + "/missing").status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace uolap::server
