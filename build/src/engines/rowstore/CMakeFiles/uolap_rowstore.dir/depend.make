# Empty dependencies file for uolap_rowstore.
# This may be replaced when dependencies are built.
