#include "obs/slo.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "obs/json_writer.h"
#include "obs/record.h"

namespace uolap::obs {

std::string SloMetricName(SloMetric metric) {
  switch (metric) {
    case SloMetric::kP50:
      return "p50";
    case SloMetric::kP95:
      return "p95";
    case SloMetric::kP99:
      return "p99";
    case SloMetric::kQueueDepth:
      return "qdepth";
  }
  return "?";
}

std::string SloSpec::ToString() const {
  std::string out = subject + ":" + SloMetricName(metric) + "<" +
                    JsonWriter::FormatDouble(threshold);
  if (metric != SloMetric::kQueueDepth) out += "ms";
  return out;
}

namespace {

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

StatusOr<std::vector<SloSpec>> ParseSloSpecs(std::string_view text) {
  std::vector<SloSpec> specs;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t comma = text.find(',', pos);
    if (comma == std::string_view::npos) comma = text.size();
    const std::string_view clause = Trim(text.substr(pos, comma - pos));
    pos = comma + 1;
    if (clause.empty()) continue;

    const size_t colon = clause.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      return Status::InvalidArgument("SLO clause '" + std::string(clause) +
                                     "' is not <subject>:<metric><threshold");
    }
    SloSpec spec;
    spec.subject = std::string(Trim(clause.substr(0, colon)));
    std::string_view rest = Trim(clause.substr(colon + 1));
    const size_t lt = rest.find('<');
    if (lt == std::string_view::npos) {
      return Status::InvalidArgument("SLO clause '" + std::string(clause) +
                                     "' has no '<' threshold");
    }
    const std::string_view metric = Trim(rest.substr(0, lt));
    if (metric == "p50") {
      spec.metric = SloMetric::kP50;
    } else if (metric == "p95") {
      spec.metric = SloMetric::kP95;
    } else if (metric == "p99") {
      spec.metric = SloMetric::kP99;
    } else if (metric == "qdepth") {
      spec.metric = SloMetric::kQueueDepth;
    } else {
      return Status::InvalidArgument(
          "unknown SLO metric '" + std::string(metric) +
          "' (want p50, p95, p99, or qdepth)");
    }
    std::string number(Trim(rest.substr(lt + 1)));
    if (spec.metric != SloMetric::kQueueDepth && number.size() >= 2 &&
        number.substr(number.size() - 2) == "ms") {
      number.resize(number.size() - 2);
    }
    if (spec.metric == SloMetric::kQueueDepth && spec.subject != "*") {
      return Status::InvalidArgument(
          "qdepth SLOs apply to the whole server; use subject '*'");
    }
    char* end = nullptr;
    spec.threshold = std::strtod(number.c_str(), &end);
    // isfinite rejects "1e999999" (inf: a threshold no window can ever
    // violate) and NaN alongside the plain non-positive cases.
    if (number.empty() || end != number.c_str() + number.size() ||
        !std::isfinite(spec.threshold) || spec.threshold <= 0) {
      return Status::InvalidArgument("SLO threshold '" + number +
                                     "' is not a positive number");
    }
    specs.push_back(std::move(spec));
  }
  return specs;
}

namespace {

double WindowValue(const WindowStat& w, SloMetric metric) {
  switch (metric) {
    case SloMetric::kP50:
      return w.p50_ms;
    case SloMetric::kP95:
      return w.p95_ms;
    case SloMetric::kP99:
      return w.p99_ms;
    case SloMetric::kQueueDepth:
      break;
  }
  return 0;
}

/// The window value of `spec`'s subject inside `epoch`, or false when the
/// epoch holds no data for it.
bool EpochValue(const SloSpec& spec, const EpochRecord& epoch, double* value) {
  if (spec.metric == SloMetric::kQueueDepth) {
    *value = static_cast<double>(epoch.max_queued);
    return true;
  }
  if (spec.subject == "*") {
    if (epoch.completed == 0) return false;
    switch (spec.metric) {
      case SloMetric::kP50:
        *value = epoch.p50_ms;
        return true;
      case SloMetric::kP95:
        *value = epoch.p95_ms;
        return true;
      case SloMetric::kP99:
        *value = epoch.p99_ms;
        return true;
      case SloMetric::kQueueDepth:
        return false;
    }
  }
  for (const WindowStat& w : epoch.tenants) {
    if (w.subject == spec.subject) {
      *value = WindowValue(w, spec.metric);
      return true;
    }
  }
  for (const WindowStat& w : epoch.classes) {
    if (w.subject == spec.subject) {
      *value = WindowValue(w, spec.metric);
      return true;
    }
  }
  return false;
}

bool SubjectKnown(const SloSpec& spec, const ServerRecord& record) {
  if (spec.subject == "*") return true;
  for (const TenantRecord& t : record.tenants) {
    if (t.name == spec.subject) return true;
  }
  for (const QueryClassRecord& c : record.classes) {
    if (c.label == spec.subject) return true;
  }
  return false;
}

}  // namespace

std::vector<SloResult> EvaluateSlos(const std::vector<SloSpec>& specs,
                                    const ServerRecord& record) {
  std::vector<SloResult> results;
  results.reserve(specs.size());
  for (const SloSpec& spec : specs) {
    SloResult result;
    result.spec = spec;
    result.known_subject = SubjectKnown(spec, record);
    if (!result.known_subject) {
      result.pass = false;
      results.push_back(std::move(result));
      continue;
    }
    for (const EpochRecord& epoch : record.epochs) {
      double value = 0;
      if (!EpochValue(spec, epoch, &value)) continue;
      ++result.epochs_evaluated;
      result.worst_value = std::max(result.worst_value, value);
      if (value > spec.threshold && result.first_violation_epoch < 0) {
        result.first_violation_epoch = epoch.index;
        result.pass = false;
      }
    }
    results.push_back(std::move(result));
  }
  return results;
}

}  // namespace uolap::obs
