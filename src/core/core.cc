#include "core/core.h"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace uolap::core {

namespace {
// Dividing by a power of two is exactly a multiply by its (exactly
// representable) reciprocal, so precomputing it is bit-identical; any
// other divisor falls back to the divide.
double RecipIfPow2(double v) {
  const double r = 1.0 / v;
  return v * r == 1.0 && 1.0 / r == v ? r : 0.0;
}
double DivByPort(double x, double port, double recip) {
  return recip != 0.0 ? x * recip : x / port;
}
}  // namespace

Core::Core(const MachineConfig& config)
    : config_(config), memory_(config), predictor_() {
  ResetFilter();
  RecomputeIfetchFractions();
  const ExecConfig& xc = config_.exec;
  inv_alu_ = RecipIfPow2(xc.alu_ports);
  inv_mul_ = RecipIfPow2(xc.mul_ports);
  inv_load_ = RecipIfPow2(xc.load_ports);
  inv_store_ = RecipIfPow2(xc.store_ports);
  inv_agu_ = RecipIfPow2(xc.agu_ports);
  inv_simd_ = RecipIfPow2(
      xc.simd_width_bits >= 512 ? 1.0 : static_cast<double>(xc.simd_ports));
  inv_issue_ = RecipIfPow2(xc.issue_width);
}

void Core::RecomputeIfetchFractions() {
  // Analytic instruction-fetch model: the region's loop body is walked
  // cyclically; with true-LRU a cyclic walk larger than a level gets the
  // capacity-proportional hit fraction at that level.
  const double footprint =
      std::max<double>(64.0, static_cast<double>(region_.footprint_bytes));
  const double f_l1 =
      std::min(1.0, static_cast<double>(config_.l1i.size_bytes) / footprint);
  const double f_l2 =
      std::min(1.0, static_cast<double>(config_.l2.size_bytes) / footprint);
  const double f_l3 =
      std::min(1.0, static_cast<double>(config_.l3.size_bytes) / footprint);
  ifrac_l1_ = f_l1;
  ifrac_l2_ = std::max(0.0, f_l2 - f_l1);
  ifrac_l3_ = std::max(0.0, f_l3 - f_l2);
  ifrac_dram_ = std::max(0.0, 1.0 - f_l3);
}

void Core::ResetFilter() {
  std::memset(filter_line_, 0xFF, sizeof(filter_line_));
  std::memset(filter_dirty_, 0, sizeof(filter_dirty_));
}

void Core::AccessSeq(uint64_t addr, uint32_t elem_bytes, uint64_t count,
                     bool is_store) {
  if (count == 0) return;
  if (is_store) {
    mix_.store += count;
    pending_.store += count;
  } else {
    mix_.load += count;
    pending_.load += count;
  }
  MemCounters* mc = memory_.mutable_counters();
  uint64_t a = addr;
  uint64_t left = count;
  while (left > 0) {
    const uint64_t off = a & 63;
    if (UOLAP_UNLIKELY(off + elem_bytes > 64)) {
      // Line-straddling element: identical to Load()'s straddle arm — walk
      // every touched line, leave the filter untouched.
      memory_.AccessData(a, elem_bytes, is_store);
      a += elem_bytes;
      --left;
      continue;
    }
    // `k` elements lie fully inside the current line. The first one
    // replicates the per-element filter logic exactly; the remaining k-1
    // are same-line repeats, i.e. L1 hits by construction.
    const uint64_t line = a >> 6;
    uint64_t k = (64 - off - elem_bytes) / elem_bytes + 1;
    if (k > left) k = left;
    const int slot = static_cast<int>((line >> 6) & (kFilterSlots - 1));
    // Bulk resident-run lane: when the elements tile whole lines from a
    // line boundary and the first line would take the walk arm below
    // (filter mismatch), MemorySystem may service a provably L1-resident
    // stream run in closed form. Each serviced line then took exactly the
    // walk the mismatch arm issues, every line of the run shares this 4 KB
    // page's filter slot, and the per-line filter writes telescope to the
    // final line — so the element accounting and filter update below are
    // bit-identical to iterating.
    if (off == 0 && 64 % elem_bytes == 0 && filter_line_[slot] != line) {
      const uint64_t per_line = 64 / elem_bytes;
      const uint64_t lines_wanted = (left + per_line - 1) / per_line;
      const uint64_t n =
          memory_.AccessDataRunResident(line, lines_wanted, is_store);
      if (n > 0) {
        const uint64_t elems = std::min(left, n * per_line);
        mc->data_accesses += elems - n;
        mc->l1d_hits += elems - n;
        filter_line_[slot] = line + n - 1;
        filter_dirty_[slot] = is_store;
        a += elems * elem_bytes;
        left -= elems;
        continue;
      }
    }
    uint64_t hits = k;
    if (filter_line_[slot] == line) {
      if (is_store && !filter_dirty_[slot]) {
        filter_dirty_[slot] = true;
        memory_.AccessDataLine(line, /*is_store=*/true);
        --hits;
      }
    } else {
      filter_line_[slot] = line;
      filter_dirty_[slot] = is_store;
      memory_.AccessDataLine(line, is_store);
      --hits;
    }
    mc->data_accesses += hits;
    mc->l1d_hits += hits;
    a += k * elem_bytes;
    left -= k;
  }
  if (UOLAP_UNLIKELY(observer_ != nullptr)) observer_->OnProgress();
}

void Core::AccessRange(SeqCursor& cur, uint64_t addr, uint32_t elem_bytes,
                       uint64_t count, bool is_store) {
  if (count == 0) return;
  if (is_store) {
    mix_.store += count;
    pending_.store += count;
  } else {
    mix_.load += count;
    pending_.load += count;
  }
  MemCounters* mc = memory_.mutable_counters();
  uint64_t a = addr;
  uint64_t left = count;
  while (left > 0) {
    const uint64_t off = a & 63;
    if (UOLAP_UNLIKELY(off + elem_bytes > 64)) {
      memory_.AccessData(a, elem_bytes, is_store);
      a += elem_bytes;
      --left;
      continue;
    }
    const uint64_t line = a >> 6;
    uint64_t k = (64 - off - elem_bytes) / elem_bytes + 1;
    if (k > left) k = left;
    // Same bulk resident-run lane as AccessSeq, with the caller's cursor
    // standing in for the filter slot (same telescoping argument).
    if (off == 0 && 64 % elem_bytes == 0 && cur.line != line) {
      const uint64_t per_line = 64 / elem_bytes;
      const uint64_t lines_wanted = (left + per_line - 1) / per_line;
      const uint64_t n =
          memory_.AccessDataRunResident(line, lines_wanted, is_store);
      if (n > 0) {
        const uint64_t elems = std::min(left, n * per_line);
        mc->data_accesses += elems - n;
        mc->l1d_hits += elems - n;
        cur.line = line + n - 1;
        cur.dirty = is_store;
        a += elems * elem_bytes;
        left -= elems;
        continue;
      }
    }
    uint64_t hits = k;
    if (cur.line == line) {
      if (is_store && !cur.dirty) {
        cur.dirty = true;
        memory_.AccessDataLine(line, /*is_store=*/true);
        --hits;
      }
    } else {
      cur.line = line;
      cur.dirty = is_store;
      memory_.AccessDataLine(line, is_store);
      --hits;
    }
    mc->data_accesses += hits;
    mc->l1d_hits += hits;
    a += k * elem_bytes;
    left -= k;
  }
  if (UOLAP_UNLIKELY(observer_ != nullptr)) observer_->OnProgress();
}

void Core::Retire(const InstrMix& mix) {
  mix_ += mix;
  ClosePhase(mix);

  // Analytic instruction-fetch model; the per-level fractions of the
  // current code region are precomputed in RecomputeIfetchFractions.
  const double lines =
      static_cast<double>(mix.TotalInstructions()) * kAvgInstrBytes / 64.0;
  if (lines > 0) {
    ifetch_l1_ += lines * ifrac_l1_;
    ifetch_l2_ += lines * ifrac_l2_;
    ifetch_l3_ += lines * ifrac_l3_;
    ifetch_dram_ += lines * ifrac_dram_;
  }
  if (UOLAP_UNLIKELY(observer_ != nullptr)) observer_->OnProgress();
}

void Core::ClosePhase(const InstrMix& retired) {
  // Phase mix: explicitly retired instructions plus the memory/branch
  // instructions auto-counted since the previous Retire.
  InstrMix phase = pending_;
  phase += retired;
  pending_ = InstrMix{};

  const ExecConfig& xc = config_.exec;
  const double simd_ports =
      xc.simd_width_bits >= 512 ? 1.0 : static_cast<double>(xc.simd_ports);
  const double port_cycles = std::max(
      {DivByPort(static_cast<double>(phase.alu), xc.alu_ports, inv_alu_),
       DivByPort(static_cast<double>(phase.mul), xc.mul_ports, inv_mul_) +
           static_cast<double>(phase.div) * xc.div_latency,
       DivByPort(static_cast<double>(phase.load), xc.load_ports, inv_load_),
       DivByPort(static_cast<double>(phase.store), xc.store_ports, inv_store_),
       DivByPort(static_cast<double>(phase.load + phase.store), xc.agu_ports,
                 inv_agu_),
       DivByPort(static_cast<double>(phase.simd), simd_ports, inv_simd_)});
  const double exec_base =
      std::max(port_cycles, static_cast<double>(phase.chain_cycles));
  const double retiring = DivByPort(
      static_cast<double>(phase.TotalInstructions()), xc.issue_width,
      inv_issue_);
  exec_stall_cycles_ += std::max(0.0, exec_base - retiring);
}

void Core::Finalize() {
  // Account any trailing auto-counted instructions as their own phase.
  ClosePhase(InstrMix{});
  memory_.Finalize();
  MemCounters* mc = memory_.mutable_counters();
  mc->code_fetches += static_cast<uint64_t>(
      std::llround(ifetch_l1_ + ifetch_l2_ + ifetch_l3_ + ifetch_dram_));
  mc->l1i_hits += static_cast<uint64_t>(std::llround(ifetch_l1_));
  mc->l1i_l2_hits += static_cast<uint64_t>(std::llround(ifetch_l2_));
  mc->l1i_l3_hits += static_cast<uint64_t>(std::llround(ifetch_l3_));
  mc->l1i_dram += static_cast<uint64_t>(std::llround(ifetch_dram_));
  ifetch_l1_ = ifetch_l2_ = ifetch_l3_ = ifetch_dram_ = 0;
}

CoreCounters Core::SnapshotCounters() const {
  // Same flush arithmetic as Finalize(), applied to a copy: after
  // Finalize() has zeroed the accumulators this degenerates to counters().
  CoreCounters c = counters();
  MemCounters& mc = c.mem;
  mc.code_fetches += static_cast<uint64_t>(
      std::llround(ifetch_l1_ + ifetch_l2_ + ifetch_l3_ + ifetch_dram_));
  mc.l1i_hits += static_cast<uint64_t>(std::llround(ifetch_l1_));
  mc.l1i_l2_hits += static_cast<uint64_t>(std::llround(ifetch_l2_));
  mc.l1i_l3_hits += static_cast<uint64_t>(std::llround(ifetch_l3_));
  mc.l1i_dram += static_cast<uint64_t>(std::llround(ifetch_dram_));
  return c;
}

CoreCounters Core::counters() const {
  CoreCounters c;
  c.mix = mix_;
  c.branch_events = branch_events_;
  c.branch_mispredicts = branch_mispredicts_;
  c.exec_stall_cycles = exec_stall_cycles_;
  c.mem = memory_.counters();
  return c;
}

void Core::Reset() {
  memory_.Reset();
  predictor_.Reset();
  mix_ = InstrMix{};
  pending_ = InstrMix{};
  branch_events_ = 0;
  branch_mispredicts_ = 0;
  exec_stall_cycles_ = 0;
  region_ = CodeRegion{"default", 2048};
  RecomputeIfetchFractions();
  ifetch_l1_ = ifetch_l2_ = ifetch_l3_ = ifetch_dram_ = 0;
  ResetFilter();
}

}  // namespace uolap::core
