#include "engine/query.h"

#include <gtest/gtest.h>

#include "tpch/dbgen.h"

namespace uolap::engine {
namespace {

TEST(PartitionRangeTest, CoversExactlyOnce) {
  const size_t n = 1003;
  for (size_t parts : {1u, 2u, 3u, 7u, 14u}) {
    size_t covered = 0;
    size_t prev_end = 0;
    for (size_t p = 0; p < parts; ++p) {
      RowRange r = PartitionRange(n, p, parts);
      EXPECT_EQ(r.begin, prev_end);
      covered += r.size();
      prev_end = r.end;
    }
    EXPECT_EQ(covered, n);
    EXPECT_EQ(prev_end, n);
  }
}

TEST(PartitionRangeTest, BalancedWithinOne) {
  for (size_t p = 0; p < 14; ++p) {
    RowRange r = PartitionRange(100, p, 14);
    EXPECT_GE(r.size(), 100u / 14);
    EXPECT_LE(r.size(), 100u / 14 + 1);
  }
}

TEST(PartitionRangeTest, EmptyInput) {
  RowRange r = PartitionRange(0, 0, 4);
  EXPECT_EQ(r.size(), 0u);
}

TEST(JoinSizeNameTest, Names) {
  EXPECT_EQ(JoinSizeName(JoinSize::kSmall), "Small");
  EXPECT_EQ(JoinSizeName(JoinSize::kMedium), "Medium");
  EXPECT_EQ(JoinSizeName(JoinSize::kLarge), "Large");
}

class SelectionParamsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    tpch::DbGen gen(42);
    db_ = new tpch::Database(std::move(gen.Generate(0.01)).value());
  }
  static tpch::Database* db_;
};
tpch::Database* SelectionParamsTest::db_ = nullptr;

TEST_F(SelectionParamsTest, CutoffsHitRequestedSelectivity) {
  for (double s : {0.1, 0.5, 0.9}) {
    SelectionParams p = MakeSelectionParams(*db_, s);
    for (const auto* col :
         {&db_->lineitem.shipdate, &db_->lineitem.commitdate,
          &db_->lineitem.receiptdate}) {
      const tpch::Date cut = col == &db_->lineitem.shipdate ? p.ship_cut
                             : col == &db_->lineitem.commitdate
                                 ? p.commit_cut
                                 : p.receipt_cut;
      size_t pass = 0;
      for (tpch::Date d : *col) {
        if (d < cut) ++pass;
      }
      EXPECT_NEAR(static_cast<double>(pass) /
                      static_cast<double>(col->size()),
                  s, 0.02);
    }
  }
}

TEST_F(SelectionParamsTest, PredicatedFlagPreserved) {
  SelectionParams p = MakeSelectionParams(*db_, 0.5, /*predicated=*/true);
  EXPECT_TRUE(p.predicated);
  EXPECT_DOUBLE_EQ(p.selectivity, 0.5);
}

TEST(Q6ParamsTest, StandardValues) {
  Q6Params p = MakeQ6Params();
  EXPECT_EQ(p.date_lo, tpch::MakeDate(1994, 1, 1));
  EXPECT_EQ(p.date_hi, tpch::MakeDate(1995, 1, 1));
  EXPECT_EQ(p.discount_lo, 5);
  EXPECT_EQ(p.discount_hi, 7);
  EXPECT_EQ(p.quantity_lim, 24);
  EXPECT_FALSE(p.predicated);
}

TEST(Q1ParamsTest, ShipdateCutIs90DaysBeforeDec1998) {
  EXPECT_EQ(Q1ShipdateCut(), tpch::MakeDate(1998, 12, 1) - 90);
}

}  // namespace
}  // namespace uolap::engine
