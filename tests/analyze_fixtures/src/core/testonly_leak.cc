// Fixture: production code calling a TestOnly hook declared elsewhere —
// CON-TESTONLY (member-call syntax) and CON-TESTONLY-REF (cross-TU).
#include "core/hooks.h"

namespace uolap::core {

void CorruptState(Hooks& h) {
  h.TestOnlyPoke();
}

}  // namespace uolap::core
