#ifndef UOLAP_OBS_PROFILE_EXPORT_H_
#define UOLAP_OBS_PROFILE_EXPORT_H_

#include <string>

#include "common/status.h"
#include "obs/record.h"

namespace uolap::obs {

/// Version of the profile JSON schema emitted by ProfileToJson. Bump on
/// any breaking change to field names/meanings; the golden exporter test
/// pins the byte-level layout so accidental drift fails CI.
/// v2: per-run "audit" object (model-invariant validation results).
/// v3: optional top-level "server" block (multi-tenant serving runs:
///     per-tenant latency percentiles/histograms, per-engine load,
///     per-class solo-vs-co-run attribution, queue-depth timeline).
/// v4: serving telemetry — optional top-level "metrics" block (registry
///     snapshot), "server" gains overall p50/p95/p99, SLO epoch windows
///     ("epochs"), trace sampling metadata, and SLO specs/results.
///     Query spans go to the Chrome trace only, never the profile JSON.
/// v5: serving robustness — "server" and each tenant gain outcome rollups
///     (admitted/rejected/shed/timed_out/failed/retries), the server block
///     additionally faults_injected/slowdowns_injected/brownout_downgrades
///     and the shed_policy / fault_plan strings that shaped the run.
inline constexpr int kProfileSchemaVersion = 5;
/// Oldest schema version the reporting tools still parse. Readers accept
/// [kMinProfileSchemaVersion, kProfileSchemaVersion]; fields added later
/// than a file's version simply read as absent.
inline constexpr int kMinProfileSchemaVersion = 2;
inline constexpr char kProfileSchemaName[] = "uolap-profile";

/// True when a profile file of schema version `v` can be parsed by this
/// build's readers.
inline constexpr bool IsSupportedProfileVersion(int v) {
  return v >= kMinProfileSchemaVersion && v <= kProfileSchemaVersion;
}

/// Serializes a session to the versioned profile JSON schema:
///
///   { "schema": "uolap-profile", "version": 5,
///     "bench": ..., "machine": ..., "freq_ghz": ..., "scale_factor": ...,
///     "seed": ..., "quick": ..., "wall_ms": ...,
///     "metrics": [ { "name", "kind", "series": [ { "label_key",
///                    "label_value", value or buckets/count/sum_micro } ] } ],
///       // "metrics" is present only when the registry snapshot taken at
///       // flush is non-empty.
///     "server": { cores/vtime_ms/submitted/completed/
///                 admitted/rejected/shed/timed_out/failed/retries/
///                 faults_injected/slowdowns_injected/brownout_downgrades/
///                 shed_policy/fault_plan/throughput_qps/
///                 avg_socket_gbps/peak_socket_gbps/saturated/
///                 p50_ms/p95_ms/p99_ms/
///                 "tenants": [ per-tenant latency stats + histogram ],
///                 "engines": [ per-engine-key load rollup ],
///                 "classes": [ solo vs co-run service time + Dcache ],
///                 "queue_timeline": [ {vtime_ms/running/queued} ],
///                 epoch_ms/"epochs": [ { index/start_ms/end_ms/completed/
///                    p50_ms/p95_ms/p99_ms/max_running/max_queued/
///                    "tenants"/"classes": [ {subject/completed/p50..p99} ] } ]/
///                 trace_sample_n/"slos": [ "<spec>" ]/
///                 "slo_results": [ { spec/known_subject/pass/
///                    first_violation_epoch/worst_value/epochs_evaluated } ] },
///       // "server" is present only when the session recorded a serving
///       // run (src/server); plain bench sessions omit the key.
///     "runs": [ { "label", "threads", "bandwidth_scale",
///                 "makespan_cycles", "time_ms", "socket_bandwidth_gbps",
///                 "audit": { "enabled", "checks",
///                            "violations": [ {checker/subject/message} ] },
///                 "cores": [ { "core",
///                    "total": { cycles/instructions/ipc/time_ms/
///                               dram_bytes/bandwidth_gbps/breakdown/
///                               counters },
///                    "regions": [ { id/name/parent/depth/visits/
///                                   exclusive{...}/inclusive{...} } ],
///                    "timeline": [ per-interval instructions/cycles/ipc/
///                                  l1d_miss_rate/dram_bytes/dram_gbps ]
///                 } ] } ] }
///
/// Region entries are emitted in node-creation order (deterministic), and
/// every object's keys are emitted in a fixed order, so equal sessions
/// serialize to equal bytes.
std::string ProfileToJson(const ProfileSession& session);

/// Serializes a session to Chrome trace-event JSON (load in Perfetto or
/// chrome://tracing): each run is a process, each simulated core a thread;
/// regions become "X" duration events placed on the modelled cycle
/// timeline, and the counter timeline becomes "C" counter tracks (IPC,
/// DRAM GB/s, L1D miss %). When the session carries a serving run with
/// sampled spans, a "serving" process is appended: each tenant gets a
/// thread carrying whole-query spans with nested queue-wait children, and
/// each server core slot gets a thread carrying execution spans with the
/// class's solo operator-region profile scaled into them.
std::string SessionToChromeTrace(const ProfileSession& session);

/// Writes `content` to `path` (binary, overwrite).
Status WriteTextFile(const std::string& path, const std::string& content);

}  // namespace uolap::obs

#endif  // UOLAP_OBS_PROFILE_EXPORT_H_
