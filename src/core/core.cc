#include "core/core.h"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace uolap::core {

Core::Core(const MachineConfig& config)
    : config_(config), memory_(config), predictor_() {
  std::memset(filter_line_, 0xFF, sizeof(filter_line_));
  std::memset(filter_dirty_, 0, sizeof(filter_dirty_));
}

void Core::Retire(const InstrMix& mix) {
  mix_ += mix;
  ClosePhase(mix);

  // Analytic instruction-fetch model: the region's loop body is walked
  // cyclically; with true-LRU a cyclic walk larger than a level gets the
  // capacity-proportional hit fraction at that level.
  const double lines =
      static_cast<double>(mix.TotalInstructions()) * kAvgInstrBytes / 64.0;
  if (lines <= 0) return;
  const double footprint =
      std::max<double>(64.0, static_cast<double>(region_.footprint_bytes));
  const double f_l1 =
      std::min(1.0, static_cast<double>(config_.l1i.size_bytes) / footprint);
  const double f_l2 =
      std::min(1.0, static_cast<double>(config_.l2.size_bytes) / footprint);
  const double f_l3 =
      std::min(1.0, static_cast<double>(config_.l3.size_bytes) / footprint);

  const double l1 = lines * f_l1;
  const double l2 = lines * std::max(0.0, f_l2 - f_l1);
  const double l3 = lines * std::max(0.0, f_l3 - f_l2);
  const double dram = lines * std::max(0.0, 1.0 - f_l3);
  ifetch_l1_ += l1;
  ifetch_l2_ += l2;
  ifetch_l3_ += l3;
  ifetch_dram_ += dram;
}

void Core::ClosePhase(const InstrMix& retired) {
  // Phase mix: explicitly retired instructions plus the memory/branch
  // instructions auto-counted since the previous Retire.
  InstrMix phase = pending_;
  phase += retired;
  pending_ = InstrMix{};

  const ExecConfig& xc = config_.exec;
  const double simd_ports =
      xc.simd_width_bits >= 512 ? 1.0 : static_cast<double>(xc.simd_ports);
  const double port_cycles = std::max(
      {static_cast<double>(phase.alu) / xc.alu_ports,
       static_cast<double>(phase.mul) / xc.mul_ports +
           static_cast<double>(phase.div) * xc.div_latency,
       static_cast<double>(phase.load) / xc.load_ports,
       static_cast<double>(phase.store) / xc.store_ports,
       static_cast<double>(phase.load + phase.store) / xc.agu_ports,
       static_cast<double>(phase.simd) / simd_ports});
  const double exec_base =
      std::max(port_cycles, static_cast<double>(phase.chain_cycles));
  const double retiring =
      static_cast<double>(phase.TotalInstructions()) / xc.issue_width;
  exec_stall_cycles_ += std::max(0.0, exec_base - retiring);
}

void Core::Finalize() {
  // Account any trailing auto-counted instructions as their own phase.
  ClosePhase(InstrMix{});
  memory_.Finalize();
  MemCounters* mc = memory_.mutable_counters();
  mc->code_fetches += static_cast<uint64_t>(
      std::llround(ifetch_l1_ + ifetch_l2_ + ifetch_l3_ + ifetch_dram_));
  mc->l1i_hits += static_cast<uint64_t>(std::llround(ifetch_l1_));
  mc->l1i_l2_hits += static_cast<uint64_t>(std::llround(ifetch_l2_));
  mc->l1i_l3_hits += static_cast<uint64_t>(std::llround(ifetch_l3_));
  mc->l1i_dram += static_cast<uint64_t>(std::llround(ifetch_dram_));
  ifetch_l1_ = ifetch_l2_ = ifetch_l3_ = ifetch_dram_ = 0;
}

CoreCounters Core::counters() const {
  CoreCounters c;
  c.mix = mix_;
  c.branch_events = branch_events_;
  c.branch_mispredicts = branch_mispredicts_;
  c.exec_stall_cycles = exec_stall_cycles_;
  c.mem = memory_.counters();
  return c;
}

void Core::Reset() {
  memory_.Reset();
  predictor_.Reset();
  mix_ = InstrMix{};
  pending_ = InstrMix{};
  branch_events_ = 0;
  branch_mispredicts_ = 0;
  exec_stall_cycles_ = 0;
  region_ = CodeRegion{"default", 2048};
  ifetch_l1_ = ifetch_l2_ = ifetch_l3_ = ifetch_dram_ = 0;
  std::memset(filter_line_, 0xFF, sizeof(filter_line_));
  std::memset(filter_dirty_, 0, sizeof(filter_dirty_));
}

}  // namespace uolap::core
