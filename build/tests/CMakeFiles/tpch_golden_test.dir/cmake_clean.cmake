file(REMOVE_RECURSE
  "CMakeFiles/tpch_golden_test.dir/tpch_golden_test.cc.o"
  "CMakeFiles/tpch_golden_test.dir/tpch_golden_test.cc.o.d"
  "tpch_golden_test"
  "tpch_golden_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpch_golden_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
