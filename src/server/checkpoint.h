#ifndef UOLAP_SERVER_CHECKPOINT_H_
#define UOLAP_SERVER_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "server/admission.h"
#include "server/loop_state.h"

namespace uolap::server {

struct ServerConfig;
struct TenantConfig;

/// Crash-consistent serving (DESIGN.md §10): at epoch boundaries the
/// server writes a versioned snapshot of the complete loop state, and
/// between snapshots it appends per-query events to a CRC-framed journal
/// (server/journal.h). Recovery loads the newest valid snapshot, then
/// *verifies* the journal against the re-derived event stream: because
/// the runtime is byte-deterministic, the resumed run re-produces every
/// journaled event bit for bit — any divergence means the checkpoint does
/// not belong to this configuration and recovery fails loudly. The
/// acceptance bar is kill-and-resume bit-equivalence: a resumed run's
/// profile JSON is byte-identical to an uninterrupted one.

/// Checkpointing knobs, carried inside ServerConfig.
struct CheckpointConfig {
  /// Directory snapshots and journals live in (empty = checkpointing off).
  std::string dir;
  /// Snapshot every N closed epochs (requires epoch_ms > 0).
  int every_epochs = 1;
  /// Resume from the newest valid snapshot in `dir` instead of starting
  /// fresh. Fails when `dir` holds no valid snapshot.
  bool resume = false;
  /// Deterministic self-kill for crash testing: once virtual time reaches
  /// this many ms the process exits with code 137 at the next top-of-loop
  /// (after any pending snapshot write). 0 disables.
  double crash_at_ms = 0;

  bool enabled() const { return !dir.empty(); }
};

// --- journal events -------------------------------------------------------

enum class JournalEventType : uint8_t {
  kAdmit = 1,    ///< query entered the FIFO queue
  kReject = 2,   ///< refused at admission
  kShed = 3,     ///< dropped from the queue at schedule time
  kTimeout = 4,  ///< deadline expired (pop-time or boundary cancellation)
  kFail = 5,     ///< retry budget exhausted after transient failures
  kComplete = 6, ///< finished and counted
  kRetry = 7,    ///< transient failure; backoff scheduled
};

/// Stable lower-case name ("admit", "reject", ...).
std::string_view JournalEventTypeName(JournalEventType type);

struct JournalEvent {
  JournalEventType type = JournalEventType::kAdmit;
  uint64_t seq = 0;
  int32_t tenant = -1;
  uint32_t attempt = 1;
  double vtime_ms = 0;

  friend bool operator==(const JournalEvent&, const JournalEvent&) = default;
};

/// Fixed-width binary payload for one journal frame.
std::string EncodeJournalEvent(const JournalEvent& event);
StatusOr<JournalEvent> DecodeJournalEvent(std::string_view payload);

// --- snapshots ------------------------------------------------------------

/// A versioned point-in-time capture of the serving run. The file format
/// is magic + version + payload + trailing whole-file CRC32C; doubles are
/// serialized as raw bit patterns, so restore is bit-exact.
struct CheckpointSnapshot {
  /// Guard against resuming under a different configuration: a CRC over
  /// the serving-relevant config plus the tenant list.
  uint64_t config_fingerprint = 0;
  /// Guard against resuming against different class profiles: a CRC over
  /// each class label and its solo cycle/byte totals.
  uint32_t class_digest = 0;
  /// The epoch index the snapshot was taken at (also its file name).
  int epoch_index = 0;
  /// Simulated core frequency, so offline inspection can render the
  /// cycle-denominated virtual clock in ms.
  double freq_ghz = 0;
  LoopState state;
  std::vector<AdmissionController::ClassModel> admission_models;
  obs::MetricsSnapshot metrics;
};

std::string EncodeSnapshot(const CheckpointSnapshot& snapshot);
StatusOr<CheckpointSnapshot> DecodeSnapshot(std::string_view bytes);

/// "snap-00000012.ckpt" / "journal-00000012.wal".
std::string SnapshotFileName(int index);
std::string JournalFileName(int index);

/// Creates `dir` if needed and writes the snapshot atomically
/// (tmp + fsync + rename) under its SnapshotFileName.
Status WriteSnapshotFile(const std::string& dir,
                         const CheckpointSnapshot& snapshot);

/// What recovery found in a checkpoint directory.
struct RecoveredCheckpoint {
  CheckpointSnapshot snapshot;
  /// Valid frames of the snapshot's paired journal (may be empty).
  std::vector<std::string> journal_payloads;
  uint64_t journal_valid_bytes = 0;
  bool journal_torn = false;       ///< a torn tail was discarded
  std::string journal_tail_error;  ///< why, when torn
  int skipped_snapshots = 0;       ///< newer snapshots that failed validation
  std::string skipped_note;        ///< last validation failure, when skipped
};

/// Loads the newest snapshot in `dir` that decodes and checksums clean,
/// plus the valid prefix of its journal. Corrupt newer snapshots are
/// skipped (reported via skipped_*); NotFound when the directory holds no
/// snapshot at all, FailedPrecondition when none validates.
StatusOr<RecoveredCheckpoint> LoadLatestCheckpoint(const std::string& dir);

/// CRC fingerprint of everything the fluid loop's behavior depends on:
/// serving knobs, robustness policies, the fault plan, and the tenant
/// list. Machine-model details are covered by the class digest.
uint64_t ServingConfigFingerprint(const ServerConfig& config,
                                  const std::vector<TenantConfig>& tenants);

// --- offline inspection (uolap_report checkpoint <dir>) -------------------

struct SnapshotFileInfo {
  int index = 0;
  uint64_t bytes = 0;
  bool valid = false;
  std::string error;    ///< decode/CRC failure, when invalid
  double vtime_ms = 0;  ///< virtual clock captured, when valid
  uint64_t submitted = 0;
  int epochs_closed = 0;
};

struct JournalFileInfo {
  int index = 0;
  uint64_t bytes = 0;
  uint64_t valid_bytes = 0;
  uint64_t records = 0;
  bool torn_tail = false;
  std::string tail_error;
};

struct CheckpointDirSummary {
  std::vector<SnapshotFileInfo> snapshots;  ///< ascending index
  std::vector<JournalFileInfo> journals;    ///< ascending index
  int resume_index = -1;  ///< newest valid snapshot (-1 = unresumable)
};

/// Validates every snapshot and journal in `dir` without resuming.
StatusOr<CheckpointDirSummary> InspectCheckpointDir(const std::string& dir);

}  // namespace uolap::server

#endif  // UOLAP_SERVER_CHECKPOINT_H_
