# Empty compiler generated dependencies file for multicore_scaling.
# This may be replaced when dependencies are built.
