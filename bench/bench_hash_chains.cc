// Reproduces the paper's Section 6 hash-chain analysis: the group-by's
// hash table is more irregular than the join's (correlated group keys
// collide more than dbgen's evenly distributed primary/foreign keys),
// which is why the high-cardinality group-by suffers more collisions.
// Paper numbers: join chains 0..1, mean 0.44, stddev 0.49; group-by
// chains 0..7, mean 0.23, stddev 0.5.

#include <cstdio>

#include "common/table_printer.h"
#include "core/machine.h"
#include "engine/hash_table.h"
#include "harness/context.h"

namespace {

using uolap::TablePrinter;
using uolap::engine::AggHashTable;
using uolap::engine::ChainStats;
using uolap::engine::JoinHashTable;

std::vector<std::string> StatRow(const std::string& label,
                                 const ChainStats& s) {
  return {label,
          std::to_string(s.entries),
          std::to_string(s.buckets),
          TablePrinter::Fmt(s.mean, 2),
          TablePrinter::Fmt(s.stddev, 2),
          std::to_string(s.max)};
}

}  // namespace

int main(int argc, char** argv) {
  uolap::harness::BenchContext ctx(argc, argv, /*default_sf=*/0.5);
  ctx.PrintHeader("Section 6 (text): hash-chain statistics");

  uolap::core::Core scratch(ctx.machine());

  // Join table: the large join's build side (dense unique orderkeys).
  JoinHashTable join_ht(ctx.db().orders.size());
  for (size_t i = 0; i < ctx.db().orders.size(); ++i) {
    join_ht.Insert(scratch, ctx.db().orders.orderkey[i], 1);
  }

  // Group-by table: Q18's phase-1 aggregation keys (l_orderkey occurrences
  // collapse onto ~orders-many groups through FindOrCreate).
  AggHashTable<1> groupby_ht(ctx.db().orders.size());
  const auto& l = ctx.db().lineitem;
  for (size_t i = 0; i < l.size(); ++i) {
    auto* e = groupby_ht.FindOrCreate(scratch, 1, l.orderkey[i]);
    groupby_ht.Add(scratch, e, 0, l.quantity[i]);
  }

  // A deliberately correlated group-by (the paper's point about groups
  // sharing common attribute values): key = (returnflag, linestatus,
  // quantity bucket) — low-entropy keys.
  AggHashTable<1> corr_ht(1024);
  for (size_t i = 0; i < l.size(); ++i) {
    const int64_t key = (static_cast<int64_t>(l.returnflag[i]) << 16) |
                        (static_cast<int64_t>(l.linestatus[i]) << 8) |
                        (l.quantity[i] / 5);
    auto* e = corr_ht.FindOrCreate(scratch, 2, key);
    corr_ht.Add(scratch, e, 0, 1);
  }

  TablePrinter t(
      "Hash-chain statistics (paper: group-by chains are more irregular "
      "than join chains)");
  t.SetHeader({"table", "entries", "buckets", "mean", "stddev", "max"});
  t.AddRow(StatRow("join build (orders, unique keys)",
                   join_ht.ComputeChainStats()));
  t.AddRow(StatRow("group-by (Q18 phase 1, orderkey)",
                   groupby_ht.ComputeChainStats()));
  t.AddRow(StatRow("group-by (correlated low-entropy keys)",
                   corr_ht.ComputeChainStats()));
  ctx.Emit(t);
  return 0;
}
