// Fixture: CON-METRIC-NAME — publishing with an inline string literal
// (including one on a continuation line) instead of a metric_names
// constant. The constant-based call is clean.
#include "obs/metric_names.h"

struct Registry {
  void Count(const char* name, long v);
  void Observe(const char* name, double v);
};

void Publish(Registry& reg) {
  reg.Count("inline.literal_total", 1);
  reg.Observe(
      "inline.on_continuation_line", 2.0);
  reg.Count(uolap::obs::metric_names::kGoodTotal, 3);
}
