file(REMOVE_RECURSE
  "libuolap_typer.a"
)
