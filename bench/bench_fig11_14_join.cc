// Reproduces the paper's Section 5 (join micro-benchmark):
//   Figure 11: CPU cycles breakdown, DBMS R / DBMS C, join size S/M/L
//   Figure 12: CPU cycles breakdown, Typer / Tectorwise
//   Figure 13: stall cycles breakdown, Typer / Tectorwise
//   Figure 14: large join: single-core random bandwidth + normalized
//              response time (all four systems)
//
// Default sf: 1.0 (the large join's build table must exceed the 35 MB L3
// to reproduce the random-access story; at sf=1 it is ~50 MB).

#include <cstdio>
#include <string>
#include <vector>

#include "common/table_printer.h"
#include "engine/query.h"
#include "harness/context.h"
#include "harness/profile.h"
#include "obs/region_profiler.h"

namespace {

using uolap::TablePrinter;
using uolap::core::ProfileResult;
using uolap::engine::JoinSize;
using uolap::engine::OlapEngine;
using uolap::engine::Workers;
using uolap::harness::BenchContext;

}  // namespace

int main(int argc, char** argv) {
  BenchContext ctx(argc, argv, /*default_sf=*/1.0);
  ctx.PrintHeader("Figures 11-14: join micro-benchmark (Section 5)");

  const std::vector<JoinSize> sizes = {JoinSize::kSmall, JoinSize::kMedium,
                                       JoinSize::kLarge};

  struct Cell {
    std::string label;
    ProfileResult r;
    uolap::obs::RegionTree regions;
  };
  auto profile_all = [&](std::vector<OlapEngine*> engines) {
    std::vector<Cell> cells;
    for (OlapEngine* e : engines) {
      for (JoinSize s : sizes) {
        std::printf("# running %s %s join...\n", e->name().c_str(),
                    uolap::engine::JoinSizeName(s).c_str());
        std::fflush(stdout);
        const std::string label =
            e->name() + " " + uolap::engine::JoinSizeName(s);
        cells.push_back(
            {label,
             ctx.Profile(label, [&](Workers& w) { e->Join(w, s); }),
             {}});
        cells.back().regions = ctx.last_run().cores[0].regions;
      }
    }
    return cells;
  };

  const std::vector<Cell> comm =
      profile_all({&ctx.engine("rowstore"), &ctx.engine("colstore")});
  const std::vector<Cell> fast =
      profile_all({&ctx.engine("typer"), &ctx.engine("tectorwise")});

  {
    TablePrinter t(
        "Figure 11: CPU cycles breakdown for join (DBMS R and DBMS C)");
    t.SetHeader(uolap::harness::CpuCyclesHeader("system/join size"));
    for (const auto& c : comm) {
      t.AddRow(uolap::harness::CpuCyclesRow(c.label, c.r.cycles));
    }
    ctx.Emit(t);
  }
  {
    TablePrinter t(
        "Figure 12: CPU cycles breakdown for join (Typer and Tectorwise)");
    t.SetHeader(uolap::harness::CpuCyclesHeader("system/join size"));
    for (const auto& c : fast) {
      t.AddRow(uolap::harness::CpuCyclesRow(c.label, c.r.cycles));
    }
    ctx.Emit(t);
  }
  {
    TablePrinter t(
        "Figure 13: Stall cycles breakdown for join (Typer and "
        "Tectorwise)");
    t.SetHeader(uolap::harness::StallHeader("system/join size"));
    for (const auto& c : fast) {
      t.AddRow(uolap::harness::StallRow(c.label, c.r.cycles));
    }
    ctx.Emit(t);
  }
  {
    TablePrinter t(
        "Figure 14 (left): single-core random-access bandwidth for the "
        "large join (MAX = 7 GB/s per core on Broadwell)");
    t.SetHeader({"system", "Bandwidth (GB/s)", "MAX (GB/s)"});
    t.AddRow({"Typer", TablePrinter::Fmt(fast[2].r.bandwidth_gbps, 2),
              TablePrinter::Fmt(ctx.machine().bandwidth.per_core_rand_gbps,
                                1)});
    t.AddRow({"Tectorwise", TablePrinter::Fmt(fast[5].r.bandwidth_gbps, 2),
              TablePrinter::Fmt(ctx.machine().bandwidth.per_core_rand_gbps,
                                1)});
    ctx.Emit(t);
  }
  {
    const double base = fast[2].r.total_cycles;  // Typer large
    TablePrinter t(
        "Figure 14 (right): normalized response time breakdown for the "
        "large join (Typer = 1; paper: DBMS R 4.5x, DBMS C 6.3x)");
    t.SetHeader({"system", "Normalized total", "Retiring", "Stall"});
    auto add = [&](const std::string& name, const ProfileResult& r) {
      t.AddRow({name, TablePrinter::Fmt(r.total_cycles / base, 1),
                TablePrinter::Fmt(r.cycles.retiring / base, 1),
                TablePrinter::Fmt(r.cycles.StallCycles() / base, 1)});
    };
    add("DBMS R", comm[2].r);
    add("DBMS C", comm[5].r);
    add("Typer", fast[2].r);
    add("Tectorwise", fast[5].r);
    ctx.Emit(t);
  }
  {
    // Per-operator Top-Down attribution of the large join (the region
    // profiler's headline view): build vs probe vs materialize, with the
    // exclusive cycles summing back to the whole-run total.
    ctx.Emit(uolap::harness::RegionTable(
        "Large join, per-operator Top-Down attribution (Typer)",
        fast[2].regions));
    ctx.Emit(uolap::harness::RegionTable(
        "Large join, per-operator Top-Down attribution (Tectorwise)",
        fast[5].regions));
  }
  return 0;
}
