// Fixture: CON-IO-CHECKED — persistence-surface I/O whose success
// result is dropped on the floor, next to consumed uses that must stay
// clean (`== 0` conditions, `(void)` annotations, stdout flushes).
#include <cstdio>

namespace uolap::server {

struct Journal {
  bool AppendRecord(const char* rec);
};

void BadDiscards(Journal& j, std::FILE* f, const char* buf,
                 unsigned long n) {
  std::fwrite(buf, 1, n, f);
  fflush(f);
  std::rename("snap-new.tmp", "snap-new.ckpt");
  j.AppendRecord("complete seq=7");
}

bool GoodUses(Journal& j, std::FILE* f, const char* buf,
              unsigned long n) {
  if (std::fwrite(buf, 1, n, f) != n) return false;
  const bool flushed = std::fflush(f) == 0;
  if (!j.AppendRecord("retry seq=9")) return false;
  (void)std::rename("snap-old.tmp", "snap-old.ckpt");
  std::fflush(stdout);  // diagnostics stream, exempt by design
  return flushed;
}

}  // namespace uolap::server
