// Reproduces the paper's Section 6 (TPC-H analysis):
//   Figure 15: CPU cycles breakdown for Q1/Q6/Q9/Q18, Typer / Tectorwise
//   Figure 16: stall cycles breakdown for Q1/Q6/Q9/Q18
//   + the in-text bandwidth observation (all queries < 1 GB/s except
//     Typer Q6 at 4.7 GB/s — low memory pressure from hash computations).
//
// Default sf: 1.0 (Q18's inner group-by then has 1.5M groups, exactly the
// paper's "high-cardinality group by (1.5 million groups)").

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "common/table_printer.h"
#include "engine/query.h"
#include "harness/context.h"
#include "harness/profile.h"

namespace {

using uolap::TablePrinter;
using uolap::core::ProfileResult;
using uolap::engine::OlapEngine;
using uolap::engine::Workers;
using uolap::harness::BenchContext;

}  // namespace

int main(int argc, char** argv) {
  BenchContext ctx(argc, argv, /*default_sf=*/1.0);
  ctx.PrintHeader("Figures 15-16: TPC-H queries (Section 6)");

  const auto q6 = uolap::engine::MakeQ6Params();
  using QueryFn = std::function<void(OlapEngine&, Workers&)>;
  const std::vector<std::pair<std::string, QueryFn>> queries = {
      {"Q1", [](OlapEngine& e, Workers& w) { e.Q1(w); }},
      {"Q6", [&q6](OlapEngine& e, Workers& w) { e.Q6(w, q6); }},
      {"Q9", [](OlapEngine& e, Workers& w) { e.Q9(w); }},
      {"Q18", [](OlapEngine& e, Workers& w) { e.Q18(w); }},
  };

  struct Cell {
    std::string label;
    ProfileResult r;
  };
  std::vector<Cell> cells;
  for (OlapEngine* e :
       std::vector<OlapEngine*>{&ctx.engine("typer"), &ctx.engine("tectorwise")}) {
    for (const auto& [name, fn] : queries) {
      std::printf("# running %s %s...\n", e->name().c_str(), name.c_str());
      std::fflush(stdout);
      const std::string label = e->name() + " " + name;
      cells.push_back(
          {label, ctx.Profile(label, [&](Workers& w) { fn(*e, w); })});
    }
  }

  {
    TablePrinter t(
        "Figure 15: CPU cycles breakdown for TPC-H queries (Typer and "
        "Tectorwise)");
    t.SetHeader(uolap::harness::CpuCyclesHeader("system/query"));
    for (const auto& c : cells) {
      t.AddRow(uolap::harness::CpuCyclesRow(c.label, c.r.cycles));
    }
    ctx.Emit(t);
  }
  {
    TablePrinter t(
        "Figure 16: Stall cycles breakdown for TPC-H queries (Typer and "
        "Tectorwise)");
    t.SetHeader(uolap::harness::StallHeader("system/query"));
    for (const auto& c : cells) {
      t.AddRow(uolap::harness::StallRow(c.label, c.r.cycles));
    }
    ctx.Emit(t);
  }
  {
    TablePrinter t(
        "Section 6 (text): single-core bandwidth for TPC-H queries "
        "(paper: <1 GB/s everywhere except Typer Q6 at 4.7 GB/s)");
    t.SetHeader({"system/query", "Bandwidth (GB/s)"});
    for (const auto& c : cells) {
      t.AddRow({c.label, TablePrinter::Fmt(c.r.bandwidth_gbps, 2)});
    }
    ctx.Emit(t);
  }
  return 0;
}
