#include "server/admission.h"

#include <cmath>

namespace uolap::server {

std::string_view ShedPolicyName(ShedPolicy policy) {
  switch (policy) {
    case ShedPolicy::kNone:
      return "none";
    case ShedPolicy::kReject:
      return "reject";
    case ShedPolicy::kShed:
      return "shed";
    case ShedPolicy::kBoth:
      return "both";
  }
  return "?";
}

StatusOr<ShedPolicy> ParseShedPolicy(std::string_view name) {
  if (name == "none" || name.empty()) return ShedPolicy::kNone;
  if (name == "reject") return ShedPolicy::kReject;
  if (name == "shed") return ShedPolicy::kShed;
  if (name == "both") return ShedPolicy::kBoth;
  return Status::InvalidArgument("unknown shed policy: " + std::string(name));
}

double RetryBackoffMs(const RetryPolicy& policy, int attempt,
                      double unit_jitter) {
  double wait = policy.backoff_base_ms;
  for (int i = 1; i < attempt; ++i) wait *= policy.backoff_multiplier;
  return wait * (1.0 + policy.backoff_jitter * unit_jitter);
}

void AdmissionController::SeedClass(size_t cls, double est_ms) {
  if (classes_.size() <= cls) classes_.resize(cls + 1);
  classes_[cls].est_ms = est_ms;
  classes_[cls].count = 0;
}

void AdmissionController::RecordCompletion(size_t cls, double service_ms) {
  if (classes_.size() <= cls) classes_.resize(cls + 1);
  ClassModel& m = classes_[cls];
  // The seed estimate counts as one observation, so early completions
  // move the mean without erasing the solo-profile prior.
  const double n = static_cast<double>(m.count) + 1.0;
  m.est_ms = (m.est_ms * n + service_ms) / (n + 1.0);
  ++m.count;
}

double AdmissionController::MeanServiceMs(size_t cls) const {
  if (cls >= classes_.size()) return 0;
  return classes_[cls].est_ms;
}

double AdmissionController::PredictResponseMs(size_t cls,
                                              double queued_work_ms) const {
  return queued_work_ms / static_cast<double>(cores_) + MeanServiceMs(cls);
}

bool AdmissionController::WouldMissDeadline(size_t cls, double queued_work_ms,
                                            double deadline_ms) const {
  if (!(deadline_ms > 0)) return false;
  return PredictResponseMs(cls, queued_work_ms) * config_.safety_factor >
         deadline_ms;
}

}  // namespace uolap::server
