file(REMOVE_RECURSE
  "libuolap_tectorwise.a"
)
