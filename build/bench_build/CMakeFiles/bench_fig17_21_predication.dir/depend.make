# Empty dependencies file for bench_fig17_21_predication.
# This may be replaced when dependencies are built.
