#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "core/config.h"
#include "core/core.h"
#include "storage/column_view.h"
#include "storage/row_store.h"

namespace uolap::storage {
namespace {

TEST(ColumnViewTest, GetReturnsValuesAndDrivesAccesses) {
  core::Core core(core::MachineConfig::Broadwell());
  std::vector<int64_t> data = {10, 20, 30};
  ColumnView<int64_t> view(data, &core);
  EXPECT_EQ(view.Get(0), 10);
  EXPECT_EQ(view.Get(2), 30);
  EXPECT_EQ(view.GetRaw(1), 20);  // raw: no access
  core.Finalize();
  EXPECT_EQ(core.counters().mix.load, 2u);
}

TEST(SimVectorTest, SetGetRoundTrip) {
  core::Core core(core::MachineConfig::Broadwell());
  SimVector<int64_t> v(8, &core);
  v.Set(3, 42);
  EXPECT_EQ(v.Get(3), 42);
  core.Finalize();
  EXPECT_EQ(core.counters().mix.store, 1u);
  EXPECT_EQ(core.counters().mix.load, 1u);
}

class RowStoreTest : public ::testing::Test {
 protected:
  RowSchema MakeSchema() {
    RowSchema s;
    a_ = s.AddField("a", 8);
    b_ = s.AddField("b", 4);
    c_ = s.AddField("c", 1);
    return s;
  }
  void AppendTuple(RowTableStorage* t, int64_t a, int32_t b, int8_t c) {
    std::vector<uint8_t> buf(t->schema().tuple_bytes());
    std::memcpy(buf.data() + t->schema().field(a_).offset, &a, 8);
    std::memcpy(buf.data() + t->schema().field(b_).offset, &b, 4);
    std::memcpy(buf.data() + t->schema().field(c_).offset, &c, 1);
    t->Append(buf.data());
  }
  int a_ = 0, b_ = 0, c_ = 0;
};

TEST_F(RowStoreTest, SchemaLayout) {
  RowSchema s = MakeSchema();
  EXPECT_EQ(s.tuple_bytes(), 13u);
  EXPECT_EQ(s.field(a_).offset, 0u);
  EXPECT_EQ(s.field(b_).offset, 8u);
  EXPECT_EQ(s.field(c_).offset, 12u);
  EXPECT_EQ(s.num_fields(), 3u);
}

TEST_F(RowStoreTest, AppendAndReadBack) {
  RowTableStorage t(MakeSchema());
  core::Core core(core::MachineConfig::Broadwell());
  for (int i = 0; i < 100; ++i) {
    AppendTuple(&t, i * 100, i, static_cast<int8_t>(i % 128));
  }
  EXPECT_EQ(t.num_tuples(), 100u);
  for (size_t i = 0; i < 100; ++i) {
    const uint8_t* tuple = t.TupleForScan(i, &core);
    EXPECT_EQ(t.ReadI64(tuple, a_, &core), static_cast<int64_t>(i) * 100);
    EXPECT_EQ(t.ReadI32(tuple, b_, &core), static_cast<int32_t>(i));
    EXPECT_EQ(t.ReadI8(tuple, c_, &core), static_cast<int8_t>(i % 128));
  }
}

TEST_F(RowStoreTest, SpillsAcrossPages) {
  RowTableStorage t(MakeSchema());
  core::Core core(core::MachineConfig::Broadwell());
  // 13B tuples + 2B slots: ~546 per 8 KB page; insert far more.
  const int n = 5000;
  for (int i = 0; i < n; ++i) AppendTuple(&t, i, i, 0);
  EXPECT_GT(t.num_pages(), 8u);
  // Spot-check tuples across page boundaries.
  for (size_t i : {0u, 545u, 546u, 547u, 4999u}) {
    const uint8_t* tuple = t.TupleForScan(i, &core);
    EXPECT_EQ(t.ReadI64(tuple, a_, &core), static_cast<int64_t>(i));
  }
}

TEST_F(RowStoreTest, RawMatchesSimulated) {
  RowTableStorage t(MakeSchema());
  core::Core core(core::MachineConfig::Broadwell());
  AppendTuple(&t, 123, 45, 6);
  EXPECT_EQ(t.TupleRaw(0), t.TupleForScan(0, &core));
}

TEST_F(RowStoreTest, ScanDrivesSimulatedAccesses) {
  RowTableStorage t(MakeSchema());
  core::Core core(core::MachineConfig::Broadwell());
  AppendTuple(&t, 1, 2, 3);
  t.TupleForScan(0, &core);
  core.Finalize();
  // Page header + slot entry.
  EXPECT_GE(core.counters().mix.load, 2u);
}

TEST_F(RowStoreTest, RejectsOversizedTuple) {
  RowSchema s;
  s.AddField("huge", 9000);
  EXPECT_DEATH(RowTableStorage{std::move(s)}, "larger than a page");
}

}  // namespace
}  // namespace uolap::storage
