// Tests of the virtual-time serving runtime: determinism (two runs of
// the same Server are bit-identical), accounting consistency, FIFO
// queueing when tenants outnumber cores, and the tentpole behaviour —
// co-running tenants that saturate the shared socket bandwidth inflate
// each other's service time and Dcache stall share relative to solo.

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/query_spec.h"
#include "engine/registry.h"
#include "harness/engines.h"
#include "server/serving.h"
#include "tpch/dbgen.h"

namespace uolap::server {
namespace {

class ServingTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    tpch::DbGen gen(42);
    db_ = new tpch::Database(std::move(gen.Generate(0.01)).value());
    registry_ = new engine::EngineRegistry(*db_);
    harness::RegisterBuiltinEngines(*registry_);
  }

  static ServerConfig BaseConfig() {
    ServerConfig config;
    config.machine = core::MachineConfig::Broadwell();
    config.cores = 4;
    config.default_max_queries = 8;
    return config;
  }

  static TenantConfig ScanTenant(const std::string& name,
                                 const std::string& engine, int concurrency,
                                 uint64_t seed) {
    TenantConfig t;
    t.name = name;
    t.engine = engine;
    t.catalog = {engine::QuerySpec::Projection(4),
                 engine::QuerySpec::Q6(engine::MakeQ6Params())};
    t.zipf_s = 0.5;
    t.concurrency = concurrency;
    t.think_ms = 0.05;
    t.seed = seed;
    return t;
  }

  static tpch::Database* db_;
  static engine::EngineRegistry* registry_;
};

tpch::Database* ServingTest::db_ = nullptr;
engine::EngineRegistry* ServingTest::registry_ = nullptr;

TEST_F(ServingTest, RepeatedRunsAreBitIdentical) {
  Server server(BaseConfig(), *registry_);
  server.AddTenant(ScanTenant("a", "typer", 2, 7));
  server.AddTenant(ScanTenant("b", "tectorwise", 2, 11));

  const ServeResult first = server.Run();
  const ServeResult second = server.Run();

  const obs::ServerRecord& r1 = first.record;
  const obs::ServerRecord& r2 = second.record;
  EXPECT_EQ(r1.vtime_ms, r2.vtime_ms);
  EXPECT_EQ(r1.submitted, r2.submitted);
  EXPECT_EQ(r1.completed, r2.completed);
  EXPECT_EQ(r1.throughput_qps, r2.throughput_qps);
  EXPECT_EQ(r1.avg_socket_gbps, r2.avg_socket_gbps);
  EXPECT_EQ(r1.peak_socket_gbps, r2.peak_socket_gbps);
  ASSERT_EQ(r1.tenants.size(), r2.tenants.size());
  for (size_t i = 0; i < r1.tenants.size(); ++i) {
    EXPECT_EQ(r1.tenants[i].mean_ms, r2.tenants[i].mean_ms);
    EXPECT_EQ(r1.tenants[i].p50_ms, r2.tenants[i].p50_ms);
    EXPECT_EQ(r1.tenants[i].p95_ms, r2.tenants[i].p95_ms);
    EXPECT_EQ(r1.tenants[i].p99_ms, r2.tenants[i].p99_ms);
    EXPECT_EQ(r1.tenants[i].latency_histogram,
              r2.tenants[i].latency_histogram);
  }
  ASSERT_EQ(r1.classes.size(), r2.classes.size());
  for (size_t i = 0; i < r1.classes.size(); ++i) {
    EXPECT_EQ(r1.classes[i].executions, r2.classes[i].executions);
    EXPECT_EQ(r1.classes[i].corun_ms, r2.classes[i].corun_ms);
    EXPECT_EQ(r1.classes[i].avg_bw_scale, r2.classes[i].avg_bw_scale);
  }
  ASSERT_EQ(r1.queue_timeline.size(), r2.queue_timeline.size());
  for (size_t i = 0; i < r1.queue_timeline.size(); ++i) {
    EXPECT_EQ(r1.queue_timeline[i].vtime_ms,
              r2.queue_timeline[i].vtime_ms);
    EXPECT_EQ(r1.queue_timeline[i].running, r2.queue_timeline[i].running);
    EXPECT_EQ(r1.queue_timeline[i].queued, r2.queue_timeline[i].queued);
  }
}

TEST_F(ServingTest, AccountingIsConsistent) {
  Server server(BaseConfig(), *registry_);
  server.AddTenant(ScanTenant("a", "typer", 2, 3));
  server.AddTenant(ScanTenant("b", "tectorwise", 2, 5));

  const ServeResult result = server.Run();
  const obs::ServerRecord& rec = result.record;

  // Everything submitted drains; tenant sums match the totals.
  EXPECT_EQ(rec.submitted, rec.completed);
  uint64_t tenant_submitted = 0;
  uint64_t tenant_completed = 0;
  for (const obs::TenantRecord& t : rec.tenants) {
    tenant_submitted += t.submitted;
    tenant_completed += t.completed;
    EXPECT_EQ(t.submitted, 8u);  // default_max_queries
    EXPECT_LE(t.p50_ms, t.p95_ms);
    EXPECT_LE(t.p95_ms, t.p99_ms);
    uint64_t hist_total = 0;
    for (const uint64_t count : t.latency_histogram) hist_total += count;
    EXPECT_EQ(hist_total, t.completed);
  }
  EXPECT_EQ(tenant_submitted, rec.submitted);
  EXPECT_EQ(tenant_completed, rec.completed);

  uint64_t engine_completed = 0;
  for (const obs::EngineLoadRecord& e : rec.engines) {
    engine_completed += e.completed;
  }
  EXPECT_EQ(engine_completed, rec.completed);

  uint64_t class_executions = 0;
  for (const obs::QueryClassRecord& c : rec.classes) {
    class_executions += c.executions;
    EXPECT_GT(c.solo_ms, 0);
  }
  EXPECT_EQ(class_executions, rec.completed);

  EXPECT_GT(rec.vtime_ms, 0);
  EXPECT_GT(rec.throughput_qps, 0);
  // One solo class profile per distinct (engine, query) class at least.
  EXPECT_GE(result.class_runs.size(), rec.classes.size());
}

TEST_F(ServingTest, FifoQueueingWhenTenantsExceedCores) {
  ServerConfig config = BaseConfig();
  config.cores = 1;
  config.default_max_queries = 4;
  Server server(config, *registry_);
  server.AddTenant(ScanTenant("a", "typer", 3, 9));

  const ServeResult result = server.Run();
  const obs::ServerRecord& rec = result.record;
  EXPECT_EQ(rec.completed, 4u);
  // Three clients contend for one core: the queue must have been depth
  // >= 1 at some point, and never more than one query runs at once.
  uint32_t max_running = 0;
  uint32_t max_queued = 0;
  for (const obs::QueueSample& q : rec.queue_timeline) {
    max_running = std::max(max_running, q.running);
    max_queued = std::max(max_queued, q.queued);
  }
  EXPECT_EQ(max_running, 1u);
  EXPECT_GE(max_queued, 1u);
}

TEST_F(ServingTest, SharedBandwidthContentionInflatesDcacheShare) {
  // Shrink the socket ceiling to the bandwidth of a single core: any two
  // co-running scans must now contend, so the serving run reports a
  // bandwidth scale < 1 and a higher Dcache stall share than solo.
  ServerConfig config = BaseConfig();
  config.machine.bandwidth.per_socket_seq_gbps =
      config.machine.bandwidth.per_core_seq_gbps;
  config.machine.bandwidth.per_socket_rand_gbps =
      config.machine.bandwidth.per_core_rand_gbps;
  Server server(config, *registry_);
  server.AddTenant(ScanTenant("a", "typer", 2, 13));
  server.AddTenant(ScanTenant("b", "tectorwise", 2, 17));

  const ServeResult result = server.Run();
  const obs::ServerRecord& rec = result.record;
  EXPECT_TRUE(rec.saturated);

  bool some_class_contended = false;
  for (const obs::QueryClassRecord& c : rec.classes) {
    if (c.executions == 0) continue;
    EXPECT_LE(c.avg_bw_scale, 1.0);
    EXPECT_GE(c.corun_ms, c.solo_ms - 1e-9);
    EXPECT_GE(c.corun_dcache_frac, c.solo_dcache_frac - 1e-12);
    if (c.avg_bw_scale < 0.999) {
      some_class_contended = true;
      EXPECT_GT(c.corun_ms, c.solo_ms);
      EXPECT_GT(c.corun_dcache_frac, c.solo_dcache_frac);
    }
  }
  EXPECT_TRUE(some_class_contended);

  // The co-run re-analysis runs ride along in class_runs.
  bool corun_run_present = false;
  for (const obs::RunRecord& run : result.class_runs) {
    if (run.label.find(" [corun]") != std::string::npos) {
      corun_run_present = true;
      EXPECT_LT(run.bw_scale, 1.0);
    }
  }
  EXPECT_TRUE(corun_run_present);
}

TEST_F(ServingTest, SpanTracingCoversEveryQueryAtFullSampling) {
  ServerConfig config = BaseConfig();
  config.trace_sample_n = 1;
  Server server(config, *registry_);
  server.AddTenant(ScanTenant("a", "typer", 2, 7));
  server.AddTenant(ScanTenant("b", "tectorwise", 2, 11));

  const obs::ServerRecord& rec = server.Run().record;
  EXPECT_EQ(rec.trace_sample_n, 1u);
  ASSERT_EQ(rec.spans.size(), rec.completed);
  uint64_t last_seq = 0;
  for (size_t i = 0; i < rec.spans.size(); ++i) {
    const obs::QuerySpan& s = rec.spans[i];
    // Span lifecycle ordering holds in virtual time: the query arrives,
    // waits (possibly zero), starts on a core, and finishes after it.
    EXPECT_LE(s.arrival_ms, s.start_ms);
    EXPECT_LT(s.start_ms, s.end_ms);
    EXPECT_GE(s.core, 0);
    EXPECT_LT(s.core, config.cores);
    EXPECT_FALSE(s.tenant.empty());
    EXPECT_FALSE(s.cls.empty());
    if (i > 0) EXPECT_GT(s.seq, last_seq);  // sorted by admission order
    last_seq = s.seq;
  }
}

TEST_F(ServingTest, SpanHeadSamplingKeepsEveryNth) {
  ServerConfig config = BaseConfig();
  config.trace_sample_n = 4;
  Server server(config, *registry_);
  server.AddTenant(ScanTenant("a", "typer", 2, 7));
  server.AddTenant(ScanTenant("b", "tectorwise", 2, 11));

  const obs::ServerRecord& rec = server.Run().record;
  // Head sampling keys on the admission sequence number, and every
  // admitted query drains, so exactly ceil(submitted / N) spans survive.
  EXPECT_EQ(rec.spans.size(), (rec.submitted + 3) / 4);
  for (const obs::QuerySpan& s : rec.spans) EXPECT_EQ(s.seq % 4, 0u);
}

TEST_F(ServingTest, EpochWindowsPartitionCompletions) {
  ServerConfig config = BaseConfig();
  config.epoch_ms = 0.5;
  Server server(config, *registry_);
  server.AddTenant(ScanTenant("a", "typer", 2, 7));
  server.AddTenant(ScanTenant("b", "tectorwise", 2, 11));

  const obs::ServerRecord& rec = server.Run().record;
  EXPECT_EQ(rec.epoch_ms, 0.5);
  ASSERT_FALSE(rec.epochs.empty());
  uint64_t epoch_completed = 0;
  for (size_t i = 0; i < rec.epochs.size(); ++i) {
    const obs::EpochRecord& e = rec.epochs[i];
    EXPECT_EQ(e.index, static_cast<int>(i));
    EXPECT_LT(e.start_ms, e.end_ms);
    if (i > 0) EXPECT_EQ(e.start_ms, rec.epochs[i - 1].end_ms);
    epoch_completed += e.completed;
    if (e.completed > 0) {
      EXPECT_LE(e.p50_ms, e.p95_ms);
      EXPECT_LE(e.p95_ms, e.p99_ms);
    }
    uint64_t window_completed = 0;
    for (const obs::WindowStat& w : e.tenants) {
      EXPECT_GT(w.completed, 0u);
      window_completed += w.completed;
    }
    EXPECT_EQ(window_completed, e.completed);
  }
  EXPECT_EQ(epoch_completed, rec.completed);
  // The whole-run percentile rollup rides along with the windows.
  EXPECT_LE(rec.p50_ms, rec.p95_ms);
  EXPECT_LE(rec.p95_ms, rec.p99_ms);
  EXPECT_GT(rec.p99_ms, 0.0);
}

TEST_F(ServingTest, SloSpecsGateOnEpochWindows) {
  ServerConfig config = BaseConfig();
  config.epoch_ms = 0.5;
  const auto specs = obs::ParseSloSpecs(
      "*:p99<1e9ms,a:p99<1e9,*:qdepth<100000,*:p99<0.0001,nosuch:p50<1");
  ASSERT_TRUE(specs.ok()) << specs.status().ToString();
  config.slos = specs.value();
  Server server(config, *registry_);
  server.AddTenant(ScanTenant("a", "typer", 2, 7));
  server.AddTenant(ScanTenant("b", "tectorwise", 2, 11));

  const obs::ServerRecord& rec = server.Run().record;
  ASSERT_EQ(rec.slo_results.size(), 5u);
  // Loose pool-wide, per-tenant, and queue-depth specs pass.
  EXPECT_TRUE(rec.slo_results[0].pass);
  EXPECT_GT(rec.slo_results[0].epochs_evaluated, 0);
  EXPECT_TRUE(rec.slo_results[1].pass);
  EXPECT_TRUE(rec.slo_results[2].pass);
  // A sub-microsecond p99 bound must trip in some epoch.
  EXPECT_FALSE(rec.slo_results[3].pass);
  EXPECT_GE(rec.slo_results[3].first_violation_epoch, 0);
  EXPECT_GT(rec.slo_results[3].worst_value, 0.0001);
  // Typos in the subject fail loudly instead of vacuously passing.
  EXPECT_FALSE(rec.slo_results[4].pass);
  EXPECT_FALSE(rec.slo_results[4].known_subject);
}

TEST_F(ServingTest, TelemetryIsDeterministicAcrossRuns) {
  ServerConfig config = BaseConfig();
  config.epoch_ms = 0.5;
  config.trace_sample_n = 2;
  Server server(config, *registry_);
  server.AddTenant(ScanTenant("a", "typer", 2, 7));
  server.AddTenant(ScanTenant("b", "tectorwise", 2, 11));

  const obs::ServerRecord r1 = server.Run().record;
  const obs::ServerRecord r2 = server.Run().record;
  ASSERT_EQ(r1.epochs.size(), r2.epochs.size());
  for (size_t i = 0; i < r1.epochs.size(); ++i) {
    EXPECT_EQ(r1.epochs[i].completed, r2.epochs[i].completed);
    EXPECT_EQ(r1.epochs[i].p99_ms, r2.epochs[i].p99_ms);
    EXPECT_EQ(r1.epochs[i].max_running, r2.epochs[i].max_running);
    EXPECT_EQ(r1.epochs[i].max_queued, r2.epochs[i].max_queued);
  }
  ASSERT_EQ(r1.spans.size(), r2.spans.size());
  for (size_t i = 0; i < r1.spans.size(); ++i) {
    EXPECT_EQ(r1.spans[i].seq, r2.spans[i].seq);
    EXPECT_EQ(r1.spans[i].tenant, r2.spans[i].tenant);
    EXPECT_EQ(r1.spans[i].start_ms, r2.spans[i].start_ms);
    EXPECT_EQ(r1.spans[i].end_ms, r2.spans[i].end_ms);
    EXPECT_EQ(r1.spans[i].core, r2.spans[i].core);
  }
}

TEST_F(ServingTest, InjectedRegistryCapturesServeCounters) {
  obs::MetricsRegistry local;
  ServerConfig config = BaseConfig();
  config.metrics = &local;
  Server server(config, *registry_);
  server.AddTenant(ScanTenant("a", "typer", 2, 7));
  server.AddTenant(ScanTenant("b", "tectorwise", 2, 11));

  const obs::ServerRecord& rec = server.Run().record;
  const obs::MetricsSnapshot snap = local.Snapshot();

  auto series_sum = [&](const char* name) {
    const obs::MetricFamily* f = snap.Find(name);
    uint64_t total = 0;
    if (f != nullptr) {
      for (const obs::MetricSeries& s : f->series) total += s.counter;
    }
    return total;
  };
  EXPECT_EQ(series_sum("server.queries_submitted_total"), rec.submitted);
  EXPECT_EQ(series_sum("server.queries_completed_total"), rec.completed);

  const obs::MetricFamily* lat = snap.Find("server.latency_ms");
  ASSERT_NE(lat, nullptr);
  uint64_t observed = 0;
  for (const obs::MetricSeries& s : lat->series) {
    observed += s.histogram.count;
  }
  EXPECT_EQ(observed, rec.completed);

  const obs::MetricFamily* vtime = snap.Find("server.vtime_ms");
  ASSERT_NE(vtime, nullptr);
  EXPECT_EQ(vtime->series[0].gauge, rec.vtime_ms);
  // Nothing leaked into the process-global registry's serve counters...
  // (other tests share the global, so only assert the injected one was
  // actually used: it is non-empty and self-consistent.)
  EXPECT_FALSE(snap.empty());
}

TEST_F(ServingTest, OpenLoopTenantObeysPoissonCap) {
  ServerConfig config = BaseConfig();
  config.default_max_queries = 6;
  Server server(config, *registry_);
  TenantConfig open;
  open.name = "open";
  open.engine = "typer";
  open.catalog = {engine::QuerySpec::Projection(2)};
  open.arrival_qps = 500;
  open.seed = 21;
  server.AddTenant(open);

  const ServeResult result = server.Run();
  ASSERT_EQ(result.record.tenants.size(), 1u);
  EXPECT_EQ(result.record.tenants[0].submitted, 6u);
  EXPECT_EQ(result.record.tenants[0].completed, 6u);
}

}  // namespace
}  // namespace uolap::server
