#!/usr/bin/env python3
"""Deprecated shim — the contract lint became scripts/analyze.

Every rule this script carried was promoted into uolap-analyze
(scripts/analyze/, DESIGN.md "Static analysis & contracts"):

  region-raii        -> CON-REGION-RAW (+ CON-REGION-PAIR, new)
  no-wall-clock      -> DET-WALLCLOCK
  no-ambient-rng     -> DET-RNG
  no-unordered-sim   -> DET-UNORDERED-SIM (+ DET-UNORDERED-ITER,
                        DET-PTR-ORDER, DET-FLOAT-ACCUM, new)
  storage-discipline -> CON-STORAGE
  test-only-hooks    -> CON-TESTONLY (+ CON-TESTONLY-REF, new)
  include-guard      -> CON-GUARD
  own-header-first   -> CON-INCLUDE-ORDER
  no-using-namespace -> CON-USING-NS
  layering           -> LAY-DAG over the real include graph (+ LAY-CYCLE)
  metric-names       -> CON-METRIC-NAME

`// lint:allow(rule)` markers were migrated to
`// uolap-analyze: allow(RULE-ID) reason`.  This shim forwards so stale
invocations keep linting instead of silently passing; new callers should
invoke `python3 scripts/analyze` directly (scripts/ci.sh analyze does).
"""

import os
import subprocess
import sys

if __name__ == "__main__":
    here = os.path.dirname(os.path.abspath(__file__))
    repo = os.path.dirname(here)
    print("lint_contracts.py is deprecated; forwarding to "
          "scripts/analyze (uolap-analyze)", file=sys.stderr)
    cmd = [sys.executable, os.path.join(here, "analyze"),
           "--baseline", os.path.join(here, "analyze", "baseline.json")]
    sys.exit(subprocess.call(cmd + sys.argv[1:], cwd=repo))
