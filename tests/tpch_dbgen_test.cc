#include "tpch/dbgen.h"

#include <set>

#include <gtest/gtest.h>

#include "tpch/types.h"

namespace uolap::tpch {
namespace {

Database Gen(double sf, uint64_t seed = 42) {
  DbGen gen(seed);
  auto db = gen.Generate(sf);
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  return std::move(db).value();
}

TEST(DbGenTest, CardinalitiesScale) {
  Database db = Gen(0.01);
  EXPECT_EQ(db.orders.size(), 15000u);
  EXPECT_EQ(db.customer.size(), 1500u);
  EXPECT_EQ(db.part.size(), 2000u);
  EXPECT_EQ(db.supplier.size(), 100u);
  EXPECT_EQ(db.partsupp.size(), 8000u);
  EXPECT_EQ(db.nation.size(), 25u);
  EXPECT_EQ(db.region.size(), 5u);
  // 1..7 lineitems per order, ~4 on average.
  EXPECT_GT(db.lineitem.size(), 15000u * 2);
  EXPECT_LT(db.lineitem.size(), 15000u * 7);
}

TEST(DbGenTest, DeterministicForSeed) {
  Database a = Gen(0.005, 7);
  Database b = Gen(0.005, 7);
  ASSERT_EQ(a.lineitem.size(), b.lineitem.size());
  EXPECT_EQ(a.lineitem.extendedprice, b.lineitem.extendedprice);
  EXPECT_EQ(a.lineitem.shipdate, b.lineitem.shipdate);
  EXPECT_EQ(a.orders.totalprice, b.orders.totalprice);
}

TEST(DbGenTest, DifferentSeedsDiffer) {
  Database a = Gen(0.005, 1);
  Database b = Gen(0.005, 2);
  EXPECT_NE(a.lineitem.extendedprice, b.lineitem.extendedprice);
}

TEST(DbGenTest, IntegrityHolds) {
  Database db = Gen(0.02);
  EXPECT_TRUE(CheckIntegrity(db).ok());
}

TEST(DbGenTest, RejectsBadScaleFactor) {
  DbGen gen;
  EXPECT_FALSE(gen.Generate(0).ok());
  EXPECT_FALSE(gen.Generate(-1).ok());
  EXPECT_FALSE(gen.Generate(1000).ok());
}

TEST(DbGenTest, GreenPartsSelectivityNearFivePercent) {
  Database db = Gen(0.05);
  size_t green = 0;
  for (size_t i = 0; i < db.part.size(); ++i) {
    if (db.part.name.Get(i).find("green") != std::string_view::npos) {
      ++green;
    }
  }
  const double frac =
      static_cast<double>(green) / static_cast<double>(db.part.size());
  // 5 words from 92 colours: P(contains green) ~ 5.3%.
  EXPECT_GT(frac, 0.02);
  EXPECT_LT(frac, 0.10);
}

TEST(DbGenTest, Q6SelectivityNearTwoPercent) {
  Database db = Gen(0.02);
  const Date lo = MakeDate(1994, 1, 1), hi = MakeDate(1995, 1, 1);
  size_t pass = 0;
  const auto& l = db.lineitem;
  for (size_t i = 0; i < l.size(); ++i) {
    if (l.shipdate[i] >= lo && l.shipdate[i] < hi && l.discount[i] >= 5 &&
        l.discount[i] <= 7 && l.quantity[i] < 24) {
      ++pass;
    }
  }
  const double frac =
      static_cast<double>(pass) / static_cast<double>(l.size());
  EXPECT_GT(frac, 0.008);
  EXPECT_LT(frac, 0.035);
}

TEST(DbGenTest, Q1GroupsAreTheExpectedFour) {
  Database db = Gen(0.01);
  std::set<std::pair<char, char>> groups;
  const auto& l = db.lineitem;
  for (size_t i = 0; i < l.size(); ++i) {
    groups.insert({static_cast<char>(l.returnflag[i]),
                   static_cast<char>(l.linestatus[i])});
  }
  // A/F, N/F, N/O, R/F — dbgen's four Q1 groups.
  EXPECT_EQ(groups.size(), 4u);
  EXPECT_TRUE(groups.count({'A', 'F'}));
  EXPECT_TRUE(groups.count({'N', 'F'}));
  EXPECT_TRUE(groups.count({'N', 'O'}));
  EXPECT_TRUE(groups.count({'R', 'F'}));
}

TEST(DbGenTest, LineitemClusteredByOrderkey) {
  Database db = Gen(0.01);
  const auto& ok = db.lineitem.orderkey;
  for (size_t i = 1; i < ok.size(); ++i) {
    ASSERT_LE(ok[i - 1], ok[i]);
  }
}

TEST(DbGenTest, TotalpriceMatchesLineitems) {
  Database db = Gen(0.005);
  std::vector<Money> totals(db.orders.size() + 1, 0);
  const auto& l = db.lineitem;
  for (size_t i = 0; i < l.size(); ++i) {
    totals[static_cast<size_t>(l.orderkey[i])] +=
        ChargedPrice(l.extendedprice[i], l.discount[i], l.tax[i]);
  }
  for (size_t o = 0; o < db.orders.size(); ++o) {
    ASSERT_EQ(db.orders.totalprice[o], totals[o + 1]);
  }
}

TEST(DbGenTest, PartsuppSuppliersAreDistinctPerPart) {
  Database db = Gen(0.01);
  for (size_t p = 0; p < db.part.size(); ++p) {
    std::set<int64_t> supps;
    for (int j = 0; j < 4; ++j) {
      supps.insert(db.partsupp.suppkey[p * 4 + static_cast<size_t>(j)]);
    }
    ASSERT_GE(supps.size(), 2u);  // dbgen formula spreads suppliers
  }
}

TEST(TpchTypesTest, DateRoundTrip) {
  EXPECT_EQ(MakeDate(1992, 1, 1), 0);
  EXPECT_EQ(DateToString(MakeDate(1995, 6, 17)), "1995-06-17");
  EXPECT_EQ(DateYear(MakeDate(1997, 12, 31)), 1997);
  EXPECT_EQ(DateYear(MakeDate(1992, 1, 1)), 1992);
  // Leap year 1996.
  EXPECT_EQ(MakeDate(1996, 3, 1) - MakeDate(1996, 2, 28), 2);
}

TEST(TpchTypesTest, MoneyHelpers) {
  EXPECT_EQ(DiscountedPrice(10000, 10), 9000);
  EXPECT_EQ(ChargedPrice(10000, 10, 8), 9720);
  EXPECT_EQ(DiscountedPrice(10000, 0), 10000);
}

}  // namespace
}  // namespace uolap::tpch
