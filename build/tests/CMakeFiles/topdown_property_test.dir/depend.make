# Empty dependencies file for topdown_property_test.
# This may be replaced when dependencies are built.
