// Fixture: DET-RNG and DET-WALLCLOCK in a simulation directory.
// rand() mentioned in a comment must NOT fire (comments are blanked).
#include <chrono>
#include <cstdlib>
#include <ctime>

namespace uolap::core {

int Entropy() {
  std::srand(42);
  int noise = std::rand();
  long stamp = time(nullptr);
  return noise + static_cast<int>(stamp);
}

double WallSeconds() {
  const auto t0 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t0.time_since_epoch()).count();
}

const char* kLogLine = "calling rand() here would be bad";  // string: no fire

}  // namespace uolap::core
