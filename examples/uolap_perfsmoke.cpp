// Deterministic hot-path smoke workload for the CI perf-smoke stage: a
// fixed synthetic address trace (never dereferenced by the simulator, so
// the run is bit-identical on every host — no ASLR pinning needed) that
// drives every accelerated lane of the simulation kernels: bulk
// resident runs, stream establish/advance/kill churn, the translation
// memo, random probes through the stream-index reject filter, line and
// page straddles, and branchy retire traffic. The finalized counters are
// exported as a real versioned profile.
//
//   uolap_perfsmoke --json=out.json [--reference]
//
// CI runs it twice — accelerated and --reference — and the two outputs
// must be byte-identical (the fast-path overhaul's counter bit-identity
// contract, asserted on top of the differential property tests). Both
// must also match the checked-in golden
// tests/golden/perfsmoke_profile.json, which pins the modelled counters
// of this trace: any drift fails CI and forces a conscious golden
// update. `uolap_report diff golden actual --max-regress=0` then
// re-checks at the modelled-cycle level.
//
// To update the golden after an intentional model change:
//   build/examples/uolap_perfsmoke --json=tests/golden/perfsmoke_profile.json

#include <cstdio>
#include <string>
#include <utility>

#include "common/flags.h"
#include "common/rng.h"
#include "core/core.h"
#include "core/calibration.h"
#include "core/machine.h"
#include "obs/attribution.h"
#include "obs/profile_export.h"
#include "obs/record.h"
#include "obs/region_profiler.h"

namespace {

using namespace uolap;

// Fixed synthetic arenas (byte addresses). The simulator keys caches by
// address only, so these constants fully determine the trace.
constexpr uint64_t kScanArena = uint64_t{1} << 20;    // sequential runs
constexpr uint64_t kStrideArena = uint64_t{1} << 24;  // strided / backward
constexpr uint64_t kProbeArena = uint64_t{1} << 30;   // random probes
constexpr uint64_t kProbeSpan = uint64_t{1} << 28;    // 256 MB probe range

/// Sequential scans: establishes forward streams and keeps them hot so
/// re-scans ride the bulk resident-run lane end to end.
void ScanPhase(core::Core& core) {
  core::ScopedRegion region(core, "scan");
  for (int pass = 0; pass < 3; ++pass) {
    core.LoadSeq(reinterpret_cast<const void*>(kScanArena), 8, 4096);
    core::InstrMix m;
    m.alu = 4096;
    core.Retire(m);
  }
  core.StoreSeq(reinterpret_cast<void*>(kScanArena), 8, 4096);
  // Interleaved two-column walk through the cursor-based range API.
  core::SeqCursor a, b;
  for (int chunk = 0; chunk < 8; ++chunk) {
    const uint64_t off = static_cast<uint64_t>(chunk) * 4096;
    core.LoadRange(a, reinterpret_cast<const void*>(kScanArena + off), 8,
                   512);
    core.LoadRange(b, reinterpret_cast<const void*>(kStrideArena + off), 4,
                   1024);
  }
}

/// Strided and backward traffic: direction locking, skip tolerance, and
/// stream kills when the pattern breaks.
void StridePhase(core::Core& core) {
  core::ScopedRegion region(core, "stride");
  for (uint64_t i = 0; i < 512; ++i) {
    core.Load(reinterpret_cast<const void*>(kStrideArena + i * 192), 8);
  }
  for (uint64_t i = 512; i > 0; --i) {
    core.Load(reinterpret_cast<const void*>(kStrideArena + i * 64), 8);
  }
  // Line straddle + page straddle, pinning the documented contract arms.
  core.Load(reinterpret_cast<const void*>(kStrideArena + 60), 8);
  core.Store(reinterpret_cast<void*>(kStrideArena + 4096 - 4), 8);
}

/// Random probes: fresh line + page per access (stream-index reject
/// filter, DTLB/STLB churn), same-line bursts (re-access arm, memo), and
/// data-dependent branches.
void ProbePhase(core::Core& core) {
  core::ScopedRegion region(core, "probe");
  core.SetMlpHint(core::kMlpScalarProbe);
  Rng rng(2024);
  for (int i = 0; i < 20000; ++i) {
    const uint64_t addr = kProbeArena + (rng.Next() & (kProbeSpan - 1));
    core.Load(reinterpret_cast<const void*>(addr & ~uint64_t{7}), 8);
    const bool taken = (rng.Next() & 3) == 0;
    core.Branch(7 + (i & 3), taken);
    if (taken) {
      // Same-page burst: consecutive fields of a matched row.
      core.Load(reinterpret_cast<const void*>(addr & ~uint64_t{63}), 8);
      core.Load(reinterpret_cast<const void*>((addr & ~uint64_t{63}) + 8),
                8);
    }
    core::InstrMix m;
    m.alu = 6;
    m.mul = 3;
    m.chain_cycles = 5;
    core.Retire(m);
  }
  core.SetMlpHint(core::kMlpDefault);
}

obs::ProfileSession RunSmoke(bool reference) {
  const core::MachineConfig cfg = core::MachineConfig::Broadwell();
  core::Machine machine(cfg, 1);
  core::Core& core = machine.core(0);
  core.SetReferencePaths(reference);
  obs::RegionProfiler prof(
      core, obs::RegionProfiler::Options{/*sample_interval=*/100000});

  ScanPhase(core);
  StridePhase(core);
  ProbePhase(core);
  machine.FinalizeAll();

  obs::CoreRecord rec;
  rec.whole = machine.AnalyzeCore(0);
  rec.regions = prof.Finish();
  obs::AnalyzeTree(cfg, &rec.regions, 1.0);
  rec.timeline = prof.timeline();
  rec.events = prof.events();
  rec.begin = prof.begin_counters();

  obs::RunRecord run;
  run.label = "perfsmoke";
  run.threads = 1;
  run.config = cfg;
  run.bw_scale = 1.0;
  run.makespan_cycles = rec.whole.total_cycles;
  run.time_ms = rec.whole.time_ms;
  run.socket_bandwidth_gbps = rec.whole.bandwidth_gbps;
  run.cores.push_back(std::move(rec));

  obs::ProfileSession session;
  session.bench = "uolap_perfsmoke";
  session.machine = cfg.name;
  session.freq_ghz = cfg.freq_ghz;
  session.scale_factor = 0.0;
  session.seed = 2024;
  session.quick = true;
  session.wall_ms = 0.0;  // host time is zeroed: the output must be stable
  session.runs.push_back(std::move(run));
  return session;
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags;
  UOLAP_CHECK(flags.Parse(argc, argv).ok());
  const std::string path = flags.GetString("json", "perfsmoke_profile.json");
  const bool reference = flags.GetBool("reference", false);

  const obs::ProfileSession session = RunSmoke(reference);
  const std::string json = obs::ProfileToJson(session);
  UOLAP_CHECK(obs::WriteTextFile(path, json).ok());
  std::printf("wrote %s (%s kernels, %zu bytes)\n", path.c_str(),
              reference ? "reference" : "accelerated", json.size());
  return 0;
}
