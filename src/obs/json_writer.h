#ifndef UOLAP_OBS_JSON_WRITER_H_
#define UOLAP_OBS_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace uolap::obs {

/// Small streaming JSON emitter used by the profile/trace exporters.
/// Emits keys in exactly the order the caller writes them — the schema
/// tests rely on byte-stable output — and formats doubles with the
/// shortest representation that round-trips, so equal inputs always
/// serialize to equal bytes.
///
///   JsonWriter w;
///   w.BeginObject();
///   w.Key("schema"); w.String("uolap-profile");
///   w.Key("runs"); w.BeginArray(); ... w.EndArray();
///   w.EndObject();
///   std::string text = w.TakeString();
class JsonWriter {
 public:
  /// `indent` spaces per nesting level; 0 = compact single-line output.
  explicit JsonWriter(int indent = 2) : indent_(indent) {}

  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  void Key(std::string_view key);

  void String(std::string_view value);
  void Double(double value);
  void Int(int64_t value);
  void UInt(uint64_t value);
  void Bool(bool value);
  void Null();

  /// Convenience: Key + value.
  void KV(std::string_view key, std::string_view value) {
    Key(key);
    String(value);
  }
  void KV(std::string_view key, const char* value) {
    Key(key);
    String(value);
  }
  void KV(std::string_view key, double value) {
    Key(key);
    Double(value);
  }
  void KV(std::string_view key, int64_t value) {
    Key(key);
    Int(value);
  }
  void KV(std::string_view key, uint64_t value) {
    Key(key);
    UInt(value);
  }
  void KV(std::string_view key, int value) {
    Key(key);
    Int(value);
  }
  void KV(std::string_view key, bool value) {
    Key(key);
    Bool(value);
  }

  /// The finished document. The writer must be back at nesting depth 0.
  std::string TakeString();

  /// Escapes `s` as a JSON string literal (with quotes).
  static std::string Escape(std::string_view s);
  /// Shortest decimal form of `v` that parses back to the same double.
  static std::string FormatDouble(double v);

 private:
  void Prefix();  ///< comma/newline/indent before a value or key

  std::string out_;
  int indent_;
  std::vector<bool> needs_comma_;  ///< per open container
  bool after_key_ = false;
  int depth_ = 0;
};

}  // namespace uolap::obs

#endif  // UOLAP_OBS_JSON_WRITER_H_
