#include "audit/invariants.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace uolap::audit {

namespace {

/// |a - b| <= tol * max(1, |a|, |b|): relative with an absolute floor so
/// identities over near-zero values do not demand impossible precision.
bool CloseRel(double a, double b, double tol) {
  const double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
  return std::fabs(a - b) <= tol * scale;
}

/// Renders "name == expr" mismatch detail: "<name>: got A, expected B".
std::string Mismatch(std::string_view name, uint64_t got, uint64_t expected) {
  std::ostringstream os;
  os << name << ": got " << got << ", expected " << expected;
  return os.str();
}

std::string MismatchD(std::string_view name, double got, double expected) {
  std::ostringstream os;
  os.precision(17);
  os << name << ": got " << got << ", expected " << expected;
  return os.str();
}

/// One exact uint64 identity: records a violation under `checker` when
/// got != expected.
void ExpectEq(AuditReport* report, std::string_view checker,
              std::string_view subject, std::string_view name, uint64_t got,
              uint64_t expected) {
  ++report->checks;
  if (got != expected) {
    report->Fail(std::string(checker), std::string(subject),
                 Mismatch(name, got, expected));
  }
}

void ExpectLe(AuditReport* report, std::string_view checker,
              std::string_view subject, std::string_view name, uint64_t lhs,
              uint64_t rhs) {
  ++report->checks;
  if (lhs > rhs) {
    std::ostringstream os;
    os << name << ": " << lhs << " > " << rhs;
    report->Fail(std::string(checker), std::string(subject), os.str());
  }
}

}  // namespace

std::string AuditReport::ToString() const {
  std::ostringstream os;
  for (const Violation& v : violations) {
    os << v.checker << " [" << v.subject << "]: " << v.message << "\n";
  }
  return os.str();
}

void CheckCache(const core::SetAssociativeCache& cache,
                std::string_view subject, AuditReport* report) {
  const uint64_t clock = cache.lru_clock();
  for (uint64_t set = 0; set < cache.num_sets(); ++set) {
    // Stamps seen among this set's valid ways (lru-permutation) and keys
    // seen (duplicate-tag). Sets are small (<= 20 ways), linear rescan of
    // the already-read states beats hashing.
    core::SetAssociativeCache::WayState ways[64];
    const uint32_t nw = std::min<uint32_t>(cache.ways(), 64);
    for (uint32_t w = 0; w < nw; ++w) ways[w] = cache.way_state(set, w);
    for (uint32_t w = 0; w < nw; ++w) {
      const auto& s = ways[w];
      ++report->checks;
      if (s.valid) {
        if (s.last_touch == 0 || s.last_touch > clock) {
          std::ostringstream os;
          os << "set " << set << " way " << w << ": valid way has LRU stamp "
             << s.last_touch << " outside (0, clock=" << clock << "]";
          report->Fail("cache.lru-stamp", std::string(subject), os.str());
        }
        if (cache.SetOf(s.key) != set) {
          std::ostringstream os;
          os << "set " << set << " way " << w << ": resident key " << s.key
             << " maps to set " << cache.SetOf(s.key);
          report->Fail("cache.home-set", std::string(subject), os.str());
        }
        for (uint32_t v = 0; v < w; ++v) {
          if (!ways[v].valid) continue;
          if (ways[v].key == s.key) {
            std::ostringstream os;
            os << "set " << set << ": key " << s.key << " resident in ways "
               << v << " and " << w;
            report->Fail("cache.duplicate-tag", std::string(subject),
                         os.str());
          }
          if (ways[v].last_touch == s.last_touch) {
            std::ostringstream os;
            os << "set " << set << ": ways " << v << " and " << w
               << " share LRU stamp " << s.last_touch;
            report->Fail("cache.lru-permutation", std::string(subject),
                         os.str());
          }
        }
      } else {
        if (s.last_touch != 0 || s.dirty) {
          std::ostringstream os;
          os << "set " << set << " way " << w << ": invalid way has stamp "
             << s.last_touch << " dirty=" << s.dirty;
          report->Fail("cache.lru-stamp", std::string(subject), os.str());
        }
      }
    }
  }
}

void CheckStreamTable(const core::MemorySystem& mem, std::string_view subject,
                      AuditReport* report) {
  const uint64_t clock = mem.stream_clock();
  core::MemorySystem::StreamState states[core::MemorySystem::kNumStreamEntries];
  for (int i = 0; i < core::MemorySystem::kNumStreamEntries; ++i) {
    states[i] = mem.stream_state(i);
  }
  for (int i = 0; i < core::MemorySystem::kNumStreamEntries; ++i) {
    const auto& s = states[i];
    ++report->checks;
    if (s.valid) {
      if (s.run < 1 || (s.dir != -1 && s.dir != 0 && s.dir != 1) ||
          s.last_touch == 0 || s.last_touch > clock) {
        std::ostringstream os;
        os << "entry " << i << ": valid stream with run=" << s.run
           << " dir=" << static_cast<int>(s.dir)
           << " last_touch=" << s.last_touch << " clock=" << clock;
        report->Fail("stream.bounds", std::string(subject), os.str());
      }
    } else if (s.run != 0 || s.last_touch != 0) {
      std::ostringstream os;
      os << "entry " << i << ": invalid stream with run=" << s.run
         << " last_touch=" << s.last_touch;
      report->Fail("stream.dead-entry", std::string(subject), os.str());
    }
    for (int j = 0; j < i; ++j) {
      if (s.last_touch != 0 && states[j].last_touch == s.last_touch) {
        std::ostringstream os;
        os << "entries " << j << " and " << i << " share LRU stamp "
           << s.last_touch;
        report->Fail("stream.lru-permutation", std::string(subject),
                     os.str());
      }
    }
  }
}

void CheckPredictor(const core::BranchPredictor& predictor,
                    std::string_view subject, AuditReport* report) {
  ++report->checks;
  for (size_t i = 0; i < predictor.table_size(); ++i) {
    if (predictor.counter_at(i) > 3) {
      std::ostringstream os;
      os << "slot " << i << ": 2-bit counter holds "
         << static_cast<int>(predictor.counter_at(i));
      report->Fail("predictor.counter-range", std::string(subject), os.str());
    }
  }
  ++report->checks;
  if ((predictor.history() & ~predictor.history_mask()) != 0) {
    std::ostringstream os;
    os << "history 0x" << std::hex << predictor.history()
       << " exceeds mask 0x" << predictor.history_mask();
    report->Fail("predictor.history-range", std::string(subject), os.str());
  }
  ExpectLe(report, "predictor.counts", subject,
           "mispredicts <= recorded branches", predictor.mispredicts(),
           predictor.branches());
}

void CheckHierarchy(const core::MemorySystem& mem, std::string_view subject,
                    AuditReport* report) {
  const auto sub = [&subject](const char* part) {
    return std::string(subject) + "/" + part;
  };
  CheckCache(mem.l1i(), sub("l1i"), report);
  CheckCache(mem.l1d(), sub("l1d"), report);
  CheckCache(mem.l2(), sub("l2"), report);
  CheckCache(mem.l3(), sub("l3"), report);
  CheckCache(mem.dtlb(), sub("dtlb"), report);
  CheckCache(mem.stlb(), sub("stlb"), report);
  CheckStreamTable(mem, sub("streams"), report);
  ExpectEq(report, "hierarchy.fill-containment", subject,
           "fills leaving the line absent from a filled level",
           mem.fill_containment_violations(), 0);
}

void CheckCounterIdentities(const core::CoreCounters& c,
                            const core::MemorySystem* live,
                            std::string_view subject, AuditReport* report) {
  const core::MemCounters& m = c.mem;

  // Every line-granular data access is serviced by exactly one level.
  ExpectEq(report, "counters.level-sum", subject,
           "l1d_hits + l2_hits + l3_hits + dram_lines",
           m.l1d_hits + m.l2_hits + m.l3_hits + m.dram_lines,
           m.data_accesses);

  // Below-L1 services split exhaustively into sequential vs random.
  ExpectEq(report, "counters.seq-rand-split", subject,
           "l2_hits_seq + l2_hits_rand", m.l2_hits_seq + m.l2_hits_rand,
           m.l2_hits);
  ExpectEq(report, "counters.seq-rand-split", subject,
           "l3_hits_seq + l3_hits_rand", m.l3_hits_seq + m.l3_hits_rand,
           m.l3_hits);
  ExpectEq(report, "counters.seq-rand-split", subject,
           "dram seq/rand service classes",
           m.dram_seq_l2_streamer + m.dram_seq_l1_streamer +
               m.dram_seq_next_line + m.dram_seq_uncovered + m.dram_rand,
           m.dram_lines);

  // DRAM traffic is line-granular and matches the serviced-line counts.
  // The rand pool also absorbs demand code fetches (FetchCode), bounded by
  // l1i_dram.
  ExpectEq(report, "counters.dram-bytes", subject, "dram_demand_bytes_seq",
           m.dram_demand_bytes_seq,
           64 * (m.dram_seq_l2_streamer + m.dram_seq_l1_streamer +
                 m.dram_seq_next_line + m.dram_seq_uncovered));
  ExpectLe(report, "counters.dram-bytes", subject,
           "64 * dram_rand <= dram_demand_bytes_rand", 64 * m.dram_rand,
           m.dram_demand_bytes_rand);
  ExpectLe(report, "counters.dram-bytes", subject,
           "dram_demand_bytes_rand <= 64 * (dram_rand + l1i_dram)",
           m.dram_demand_bytes_rand, 64 * (m.dram_rand + m.l1i_dram));
  ExpectEq(report, "counters.dram-bytes", subject,
           "dram_demand_bytes_rand % 64", m.dram_demand_bytes_rand % 64, 0);
  ExpectEq(report, "counters.dram-bytes", subject,
           "dram_prefetch_waste_bytes % 64", m.dram_prefetch_waste_bytes % 64,
           0);
  ExpectEq(report, "counters.dram-bytes", subject,
           "dram_writeback_bytes % 64", m.dram_writeback_bytes % 64, 0);

  // TLB events: only walked (non-filter-bulk) accesses translate, so the
  // counters alone give an upper bound; the live check below is exact.
  ExpectLe(report, "counters.tlb", subject,
           "dtlb_hits + stlb_hits + page_walks <= data_accesses",
           m.dtlb_hits + m.stlb_hits + m.page_walks, m.data_accesses);

  ExpectLe(report, "counters.branch", subject,
           "branch_mispredicts <= branch_events", c.branch_mispredicts,
           c.branch_events);
  ExpectLe(report, "counters.branch", subject,
           "branch_events <= retired branch instructions", c.branch_events,
           c.mix.branch);

  // Analytic I-fetch: the total and the four per-level parts are rounded
  // independently (llround each), so they may disagree by up to 2; demand
  // FetchCode contributes exactly. Allow |diff| <= 3.
  {
    ++report->checks;
    const uint64_t parts =
        m.l1i_hits + m.l1i_l2_hits + m.l1i_l3_hits + m.l1i_dram;
    const uint64_t hi = std::max(parts, m.code_fetches);
    const uint64_t lo = std::min(parts, m.code_fetches);
    if (hi - lo > 3) {
      report->Fail("counters.icache", std::string(subject),
                   Mismatch("l1i level counters vs code_fetches (tol 3)",
                            parts, m.code_fetches));
    }
  }

  // Every retired load/store makes at least one line-granular access
  // (straddles make more; nothing else makes data accesses).
  ExpectLe(report, "counters.element-vs-line", subject,
           "retired loads + stores <= data_accesses",
           c.mix.load + c.mix.store, m.data_accesses);

  ExpectLe(report, "counters.streams", subject,
           "streams_killed <= streams_established", m.streams_killed,
           m.streams_established);

  if (live == nullptr) return;

  // --- reconcile the counter ledger against the caches' own hit/miss
  //     statistics (exact: Reset clears both sides together) ---
  const auto& l1i = live->l1i();
  const auto& l1d = live->l1d();
  const auto& l2 = live->l2();
  const auto& l3 = live->l3();
  const auto& dtlb = live->dtlb();
  const auto& stlb = live->stlb();

  // The filter's bulk same-line hits bypass the walk, so the cache ledger
  // lags l1d_hits by exactly the bulk count — which cancels out of
  // data_accesses - l1d_hits.
  ExpectEq(report, "counters.cache-reconcile", subject,
           "data_accesses - l1d_hits == live L1D misses",
           m.data_accesses - m.l1d_hits, l1d.misses());
  ExpectLe(report, "counters.cache-reconcile", subject,
           "live L1D hits <= l1d_hits", l1d.hits(), m.l1d_hits);
  ExpectEq(report, "counters.cache-reconcile", subject,
           "live L2 accesses == L1D misses + L1I misses",
           l2.hits() + l2.misses(), l1d.misses() + l1i.misses());
  ExpectEq(report, "counters.cache-reconcile", subject,
           "live L3 accesses == L2 misses", l3.hits() + l3.misses(),
           l2.misses());
  if (l1i.hits() + l1i.misses() == 0) {
    // No demand code fetches: the data-side counters and the shared-cache
    // ledgers must agree exactly.
    ExpectEq(report, "counters.cache-reconcile", subject,
             "l2_hits == live L2 hits", m.l2_hits, l2.hits());
    ExpectEq(report, "counters.cache-reconcile", subject,
             "l3_hits == live L3 hits", m.l3_hits, l3.hits());
    ExpectEq(report, "counters.cache-reconcile", subject,
             "dram_lines == live L3 misses", m.dram_lines, l3.misses());
  } else {
    ExpectLe(report, "counters.cache-reconcile", subject,
             "l2_hits <= live L2 hits", m.l2_hits, l2.hits());
    ExpectLe(report, "counters.cache-reconcile", subject,
             "l3_hits <= live L3 hits", m.l3_hits, l3.hits());
    ExpectLe(report, "counters.cache-reconcile", subject,
             "dram_lines <= live L3 misses", m.dram_lines, l3.misses());
  }

  // Every walked data access translates exactly once.
  ExpectEq(report, "counters.tlb", subject,
           "live DTLB accesses == live L1D accesses",
           dtlb.hits() + dtlb.misses(), l1d.hits() + l1d.misses());
  ExpectEq(report, "counters.tlb", subject, "dtlb_hits == live DTLB hits",
           m.dtlb_hits, dtlb.hits());
  ExpectEq(report, "counters.tlb", subject,
           "live STLB accesses == live DTLB misses",
           stlb.hits() + stlb.misses(), dtlb.misses());
  ExpectEq(report, "counters.tlb", subject, "stlb_hits == live STLB hits",
           m.stlb_hits, stlb.hits());
  ExpectEq(report, "counters.tlb", subject, "page_walks == live STLB misses",
           m.page_walks, stlb.misses());
}

void CheckBreakdown(const core::ProfileResult& result, double freq_ghz,
                    std::string_view subject, AuditReport* report) {
  constexpr double kTol = 1e-9;
  const core::CycleBreakdown& b = result.cycles;
  const double comps[6] = {b.retiring, b.branch_misp, b.icache,
                           b.decoding,  b.dcache,      b.execution};
  static const char* const names[6] = {"retiring", "branch_misp", "icache",
                                       "decoding", "dcache",      "execution"};
  for (int i = 0; i < 6; ++i) {
    ++report->checks;
    if (!(comps[i] >= 0.0)) {  // catches NaN too
      report->Fail("topdown.nonnegative", std::string(subject),
                   MismatchD(names[i], comps[i], 0.0));
    }
  }
  ++report->checks;
  if (!CloseRel(b.Total(), result.total_cycles, kTol)) {
    report->Fail("topdown.total", std::string(subject),
                 MismatchD("sum of six components vs total_cycles", b.Total(),
                           result.total_cycles));
  }

  ++report->checks;
  if (result.instructions != result.counters.mix.TotalInstructions()) {
    report->Fail("topdown.derived", std::string(subject),
                 Mismatch("instructions vs counters.mix total",
                          result.instructions,
                          result.counters.mix.TotalInstructions()));
  }
  ++report->checks;
  if (!CloseRel(result.time_ms, result.total_cycles / (freq_ghz * 1e6),
                kTol)) {
    report->Fail("topdown.derived", std::string(subject),
                 MismatchD("time_ms vs total_cycles / (freq * 1e6)",
                           result.time_ms,
                           result.total_cycles / (freq_ghz * 1e6)));
  }
  ++report->checks;
  if (!CloseRel(result.dram_bytes,
                static_cast<double>(result.counters.mem.TotalDramBytes()),
                kTol)) {
    report->Fail(
        "topdown.derived", std::string(subject),
        MismatchD("dram_bytes vs counters.mem.TotalDramBytes()",
                  result.dram_bytes,
                  static_cast<double>(result.counters.mem.TotalDramBytes())));
  }
  ++report->checks;
  const double want_bw =
      result.total_cycles > 0
          ? result.dram_bytes * freq_ghz / result.total_cycles
          : 0.0;
  if (!CloseRel(result.bandwidth_gbps, want_bw, kTol)) {
    report->Fail("topdown.derived", std::string(subject),
                 MismatchD("bandwidth_gbps", result.bandwidth_gbps, want_bw));
  }
  ++report->checks;
  const double want_ipc =
      result.total_cycles > 0
          ? static_cast<double>(result.instructions) / result.total_cycles
          : 0.0;
  if (!CloseRel(result.ipc, want_ipc, kTol)) {
    report->Fail("topdown.derived", std::string(subject),
                 MismatchD("ipc", result.ipc, want_ipc));
  }
}

AuditReport AuditCore(const core::Core& core, std::string_view subject) {
  AuditReport report;
  const auto sub = [&subject](const char* part) {
    return std::string(subject) + "/" + part;
  };
  CheckHierarchy(core.memory(), sub("mem"), &report);
  CheckPredictor(core.predictor(), sub("predictor"), &report);
  const core::CoreCounters c = core.SnapshotCounters();
  CheckCounterIdentities(c, &core.memory(), sub("counters"), &report);
  // The core-level branch ledger and the predictor's own must agree.
  ExpectEq(&report, "counters.branch", sub("counters"),
           "branch_events == predictor branches", c.branch_events,
           core.predictor().branches());
  ExpectEq(&report, "counters.branch", sub("counters"),
           "branch_mispredicts == predictor mispredicts",
           c.branch_mispredicts, core.predictor().mispredicts());
  return report;
}

}  // namespace uolap::audit
