#include "core/cache.h"

#include <gtest/gtest.h>

namespace uolap::core {
namespace {

TEST(SetAssociativeCacheTest, MissThenHit) {
  SetAssociativeCache c(4, 2);
  EXPECT_FALSE(c.Access(10, false));
  c.Insert(10, false);
  EXPECT_TRUE(c.Access(10, false));
  EXPECT_EQ(c.hits(), 1u);
  EXPECT_EQ(c.misses(), 1u);
}

TEST(SetAssociativeCacheTest, LruEvictsOldest) {
  // One set, two ways: keys 0, 4, 8 all map to set 0 (4 sets).
  SetAssociativeCache c(4, 2);
  c.Insert(0, false);
  c.Insert(4, false);
  // Touch 0 so 4 becomes LRU.
  EXPECT_TRUE(c.Access(0, false));
  CacheAccessResult r = c.Insert(8, false);
  EXPECT_TRUE(r.evicted);
  EXPECT_EQ(r.evicted_key, 4u);
  EXPECT_TRUE(c.Contains(0));
  EXPECT_TRUE(c.Contains(8));
  EXPECT_FALSE(c.Contains(4));
}

TEST(SetAssociativeCacheTest, DirtyEvictionReported) {
  SetAssociativeCache c(1, 1);
  c.Insert(1, /*dirty=*/true);
  CacheAccessResult r = c.Insert(2, false);
  EXPECT_TRUE(r.evicted);
  EXPECT_TRUE(r.evicted_dirty);
  EXPECT_EQ(r.evicted_key, 1u);
}

TEST(SetAssociativeCacheTest, StoreAccessMarksDirty) {
  SetAssociativeCache c(1, 1);
  c.Insert(1, false);
  EXPECT_TRUE(c.Access(1, /*is_store=*/true));
  CacheAccessResult r = c.Insert(2, false);
  EXPECT_TRUE(r.evicted_dirty);
}

TEST(SetAssociativeCacheTest, InsertExistingPromotesAndMergesDirty) {
  SetAssociativeCache c(1, 2);
  c.Insert(1, false);
  c.Insert(2, false);
  // Re-insert 1 dirty: becomes MRU and dirty; inserting 3 evicts 2.
  CacheAccessResult again = c.Insert(1, true);
  EXPECT_TRUE(again.hit);
  CacheAccessResult r = c.Insert(3, false);
  EXPECT_EQ(r.evicted_key, 2u);
  // Evicting 1 now must report dirty.
  c.Access(3, false);
  CacheAccessResult r2 = c.Insert(4, false);
  EXPECT_EQ(r2.evicted_key, 1u);
  EXPECT_TRUE(r2.evicted_dirty);
}

TEST(SetAssociativeCacheTest, MarkDirtyOnlyWhenResident) {
  SetAssociativeCache c(2, 1);
  EXPECT_FALSE(c.MarkDirty(5));
  c.Insert(5, false);
  EXPECT_TRUE(c.MarkDirty(5));
}

TEST(SetAssociativeCacheTest, InvalidateRemovesLine) {
  SetAssociativeCache c(2, 1);
  c.Insert(5, true);
  bool dirty = false;
  EXPECT_TRUE(c.Invalidate(5, &dirty));
  EXPECT_TRUE(dirty);
  EXPECT_FALSE(c.Contains(5));
  EXPECT_FALSE(c.Invalidate(5, &dirty));
}

TEST(SetAssociativeCacheTest, ClearDropsEverything) {
  SetAssociativeCache c(4, 4);
  for (uint64_t k = 0; k < 16; ++k) c.Insert(k, false);
  c.Clear();
  for (uint64_t k = 0; k < 16; ++k) EXPECT_FALSE(c.Contains(k));
}

TEST(SetAssociativeCacheTest, DistinctSetsDoNotInterfere) {
  SetAssociativeCache c(2, 1);
  c.Insert(0, false);  // set 0
  c.Insert(1, false);  // set 1
  EXPECT_TRUE(c.Contains(0));
  EXPECT_TRUE(c.Contains(1));
}

TEST(SetAssociativeCacheTest, WorkingSetLargerThanCacheThrashes) {
  // 8 lines capacity; cyclic walk over 16 keys with LRU never hits.
  SetAssociativeCache c(1, 8);
  int hits = 0;
  for (int round = 0; round < 4; ++round) {
    for (uint64_t k = 0; k < 16; ++k) {
      if (c.Access(k, false)) ++hits;
      c.Insert(k, false);
    }
  }
  EXPECT_EQ(hits, 0);
}

TEST(SetAssociativeCacheTest, WorkingSetWithinCacheAlwaysHitsAfterWarmup) {
  SetAssociativeCache c(4, 4);  // 16 lines
  for (uint64_t k = 0; k < 16; ++k) c.Insert(k, false);
  for (int round = 0; round < 3; ++round) {
    for (uint64_t k = 0; k < 16; ++k) {
      EXPECT_TRUE(c.Access(k, false));
    }
  }
}

TEST(SetAssociativeCacheTest, NonPowerOfTwoSetsWork) {
  // Broadwell's 35 MB L3 has 28672 sets; exercise the modulo path.
  SetAssociativeCache c(3, 2);
  c.Insert(0, false);
  c.Insert(1, false);
  c.Insert(2, false);
  EXPECT_TRUE(c.Contains(0));
  EXPECT_TRUE(c.Contains(1));
  EXPECT_TRUE(c.Contains(2));
  // Keys 0 and 3 share set 0; with 2 ways both fit.
  c.Insert(3, false);
  EXPECT_TRUE(c.Contains(0));
  EXPECT_TRUE(c.Contains(3));
}

}  // namespace
}  // namespace uolap::core
