// Typer's TPC-H Q9: the join-intensive query. Plan (standard left-deep):
//   lineitem |x| part(green) |x| partsupp |x| orders |x| supplier |x| nation
// with a (nation, year) group-by on top. All joins are hash joins; the
// probe pipeline is one fused loop over lineitem.

#include <algorithm>
#include <cstring>
#include <map>
#include <memory>
#include <vector>

#include "common/macros.h"
#include "core/calibration.h"
#include "engine/hash_table.h"
#include "engines/typer/typer_engine.h"
#include "storage/column_view.h"

namespace uolap::typer {

using core::InstrMix;
using engine::AggHashTable;
using engine::JoinHashTable;
using engine::PartitionRange;
using engine::Q9Result;
using engine::Q9Row;
using engine::RowRange;
using engine::Workers;
using storage::ColumnView;
using tpch::Money;

namespace {

/// Simulated substring search for "green" over a part name: loads the
/// bytes and charges roughly one compare per character (the compiled
/// memmem loop).
bool NameContainsGreen(core::Core& core, const tpch::StringColumn& names,
                       size_t i) {
  const char* data = names.DataPtr(i);
  const uint32_t len = names.Length(i);
  core.Load(data, len);
  InstrMix m;
  m.alu = len;
  core.Retire(m);
  static constexpr char kNeedle[] = "green";
  if (len < 5) return false;
  for (uint32_t pos = 0; pos + 5 <= len; ++pos) {
    if (std::memcmp(data + pos, kNeedle, 5) == 0) return true;
  }
  return false;
}

}  // namespace

Q9Result TyperEngine::Q9(Workers& w) const {
  const auto& part = db_.part;
  const auto& ps = db_.partsupp;
  const auto& sup = db_.supplier;
  const auto& ord = db_.orders;
  const auto& l = db_.lineitem;
  const int64_t num_supp = static_cast<int64_t>(sup.size());

  // --- build: part filter (p_name like '%green%') -> partkey set ---
  JoinHashTable green_parts(part.size() / 16 + 16);
  for (size_t t = 0; t < w.count(); ++t) {
    core::Core& core = *w.cores[t];
    core::ScopedRegion filter_region(core, "filter");
    const RowRange r = PartitionRange(part.size(), t, w.count());
    core.SetCodeRegion({"typer/q9-part-filter", 1024});
    core.SetMlpHint(core::kMlpDefault);
    ColumnView<int64_t> pk(part.partkey, &core);
    for (size_t i = r.begin; i < r.end; ++i) {
      const bool green = NameContainsGreen(core, part.name, i);
      core.Branch(engine::branch_site::kQ9PartFilter, green);
      if (green) green_parts.Insert(core, pk.Get(i), 1);
    }
    InstrMix loop;
    loop.alu = 2;
    loop.branch = 1;
    core.RetireN(loop, r.size());
  }

  // --- build: supplier -> nationkey ---
  JoinHashTable supp_nation(sup.size());
  // --- build: partsupp (partkey, suppkey) -> supplycost ---
  JoinHashTable ps_cost(ps.size());
  // --- build: orders -> orderdate ---
  JoinHashTable order_date(ord.size());
  for (size_t t = 0; t < w.count(); ++t) {
    core::Core& core = *w.cores[t];
    core::ScopedRegion build_region(core, "build");
    core.SetCodeRegion({"typer/q9-builds", 1024});
    core.SetMlpHint(core::kMlpScalarProbe);
    {
      const RowRange r = PartitionRange(sup.size(), t, w.count());
      ColumnView<int64_t> sk(sup.suppkey, &core);
      ColumnView<int64_t> nk(sup.nationkey, &core);
      for (size_t i = r.begin; i < r.end; ++i) {
        supp_nation.Insert(core, sk.Get(i), nk.Get(i));
      }
    }
    {
      const RowRange r = PartitionRange(ps.size(), t, w.count());
      ColumnView<int64_t> pk(ps.partkey, &core);
      ColumnView<int64_t> sk(ps.suppkey, &core);
      ColumnView<Money> cost(ps.supplycost, &core);
      InstrMix key_mix;  // composite key: pk * (S+1) + sk
      key_mix.mul = 1;
      key_mix.alu = 1;
      for (size_t i = r.begin; i < r.end; ++i) {
        const int64_t key = pk.Get(i) * (num_supp + 1) + sk.Get(i);
        core.Retire(key_mix);
        ps_cost.Insert(core, key, cost.Get(i));
      }
    }
    {
      const RowRange r = PartitionRange(ord.size(), t, w.count());
      ColumnView<int64_t> ok(ord.orderkey, &core);
      ColumnView<tpch::Date> od(ord.orderdate, &core);
      for (size_t i = r.begin; i < r.end; ++i) {
        order_date.Insert(core, ok.Get(i), od.Get(i));
      }
    }
  }

  // --- probe pipeline over lineitem, (nationkey, year) aggregation ---
  // Per-worker aggregation tables, allocated serially up front (their
  // simulated addresses must not depend on thread scheduling). The
  // (nation, year) group count is far below the 256 reserved entries, so
  // the tables never reallocate inside the parallel bodies.
  std::vector<std::unique_ptr<AggHashTable<1>>> aggs;
  for (size_t t = 0; t < w.count(); ++t) {
    aggs.push_back(std::make_unique<AggHashTable<1>>(256));
  }
  w.ForEach([&](size_t t) {
    core::Core& core = *w.cores[t];
    core::ScopedRegion probe_region(core, "probe");
    const RowRange r = PartitionRange(l.size(), t, w.count());
    core.SetCodeRegion({"typer/q9-probe", 2048});
    core.SetMlpHint(core::kMlpScalarProbe);

    ColumnView<int64_t> pk(l.partkey, &core);
    ColumnView<int64_t> sk(l.suppkey, &core);
    ColumnView<int64_t> ok(l.orderkey, &core);
    ColumnView<Money> ep(l.extendedprice, &core);
    ColumnView<int64_t> disc(l.discount, &core);
    ColumnView<int64_t> qty(l.quantity, &core);

    AggHashTable<1>& agg = *aggs[t];
    uint64_t green_hits = 0;
    constexpr size_t kBlock = 1024;
    for (size_t blk = r.begin; blk < r.end; blk += kBlock) {
      const size_t blk_end = std::min(r.end, blk + kBlock);
      pk.Touch(blk, blk_end - blk);  // probe key, read for every tuple
      for (size_t i = blk; i < blk_end; ++i) {
        int64_t unused;
        const bool is_green = green_parts.ProbeFirst(
            core, engine::branch_site::kQ9Chain1, pk.GetRaw(i), &unused);
        if (!is_green) continue;
        ++green_hits;

        const int64_t ps_key = pk.GetRaw(i) * (num_supp + 1) + sk.Get(i);
        int64_t supplycost = 0;
        ps_cost.ProbeFirst(core, engine::branch_site::kQ9Chain2, ps_key,
                           &supplycost);
        int64_t odate64 = 0;
        order_date.ProbeFirst(core, engine::branch_site::kQ9Chain3,
                              ok.Get(i), &odate64);
        const tpch::Date odate = static_cast<tpch::Date>(odate64);
        int64_t nationkey = 0;
        supp_nation.ProbeFirst(core, engine::branch_site::kQ9Chain4,
                               sk.GetRaw(i), &nationkey);

        const int year = tpch::DateYear(odate);
        const Money amount = tpch::DiscountedPrice(ep.Get(i), disc.Get(i)) -
                             supplycost * qty.Get(i);
        auto* entry = agg.FindOrCreate(
            core, engine::branch_site::kQ9AggChain, nationkey * 4096 + year);
        agg.Add(core, entry, 0, amount);
      }
    }
    InstrMix per_tuple;
    per_tuple.alu = 2;
    per_tuple.branch = 1;
    core.RetireN(per_tuple, r.size());
    InstrMix per_hit;  // composite key, year extraction, profit arithmetic
    per_hit.alu = 14;
    per_hit.mul = 4;
    per_hit.chain_cycles = 2;
    core.RetireN(per_hit, green_hits);
  });

  std::map<std::pair<int64_t, int>, Money> merged;
  for (size_t t = 0; t < w.count(); ++t) {
    for (const auto& e : aggs[t]->entries()) {
      merged[{e.key / 4096, static_cast<int>(e.key % 4096)}] += e.aggs[0];
    }
  }

  Q9Result result;
  for (const auto& [key, profit] : merged) {
    Q9Row row;
    row.nation = std::string(db_.nation.name.Get(
        static_cast<size_t>(key.first)));
    row.year = key.second;
    row.profit = profit;
    result.rows.push_back(row);
  }
  std::sort(result.rows.begin(), result.rows.end(),
            [](const Q9Row& a, const Q9Row& b) {
              if (a.nation != b.nation) return a.nation < b.nation;
              return a.year > b.year;
            });
  return result;
}

}  // namespace uolap::typer
