#include "engine/engine.h"

#include "common/macros.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"

namespace uolap::engine {

bool OlapEngine::Supports(QueryId id) const {
  return id != QueryId::kQ9 && id != QueryId::kQ18;
}

StatusOr<QueryResult> OlapEngine::Run(const QuerySpec& spec,
                                      Workers& w) const {
  Status valid = spec.Validate();
  if (!valid.ok()) return valid;
  if (!Supports(spec.id)) {
    return Status::Unimplemented("engine " + name() +
                                 " does not support query " +
                                 QueryIdName(spec.id));
  }
  obs::MetricsRegistry::Global().Count(
      obs::metric_names::kEngineDispatchTotal, "query", QueryIdName(spec.id));
  QueryResult r;
  r.id = spec.id;
  switch (spec.id) {
    case QueryId::kProjection:
      r.value = Projection(w, spec.projection_degree);
      break;
    case QueryId::kSelection:
      r.value = Selection(w, spec.selection);
      break;
    case QueryId::kJoin:
      r.value = Join(w, spec.join_size);
      break;
    case QueryId::kGroupBy:
      r.value = GroupBy(w, spec.num_groups);
      break;
    case QueryId::kQ1:
      r.value = Q1(w);
      break;
    case QueryId::kQ6:
      r.value = Q6(w, spec.q6);
      break;
    case QueryId::kQ9:
      r.value = Q9(w);
      break;
    case QueryId::kQ18:
      r.value = Q18(w);
      break;
  }
  return r;
}

Q9Result OlapEngine::Q9(Workers&) const {
  UOLAP_CHECK_MSG(false,
                  "Q9 is only implemented by the high-performance engines");
  return Q9Result{};
}

Q18Result OlapEngine::Q18(Workers&) const {
  UOLAP_CHECK_MSG(false,
                  "Q18 is only implemented by the high-performance engines");
  return Q18Result{};
}

}  // namespace uolap::engine
