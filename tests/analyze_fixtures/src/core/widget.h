#ifndef UOLAP_CORE_WIDGET_H_
#define UOLAP_CORE_WIDGET_H_
// Fixture: the header widget.cc must include first.

namespace uolap::core {
int WidgetCount();
}  // namespace uolap::core

#endif  // UOLAP_CORE_WIDGET_H_
