// Reproduces the paper's Section 7 (predication):
//   Figure 17/18: Typer branched vs branch-free selection — response time
//                 and stall time breakdowns
//   Figure 19/20: the same for Tectorwise
//   Figure 21:    single-core bandwidth of the predicated selection
//   + the in-text predicated-Q6 observations (Typer -11%, Tectorwise -52%;
//     bandwidth 4.7 -> 6.9 GB/s and 1 -> 4.7 GB/s).
//
// Default sf: 0.5.

#include <cstdio>
#include <string>
#include <vector>

#include "common/table_printer.h"
#include "engine/query.h"
#include "harness/context.h"
#include "harness/profile.h"

namespace {

using uolap::TablePrinter;
using uolap::core::ProfileResult;
using uolap::engine::OlapEngine;
using uolap::engine::Workers;
using uolap::harness::BenchContext;

}  // namespace

int main(int argc, char** argv) {
  BenchContext ctx(argc, argv, /*default_sf=*/0.5);
  ctx.PrintHeader("Figures 17-21: predication (Section 7)");

  const std::vector<double> selectivities = {0.1, 0.5, 0.9};

  struct Cell {
    std::string label;
    ProfileResult r;
  };
  auto run_engine = [&](OlapEngine& e) {
    std::vector<Cell> cells;
    for (double s : selectivities) {
      for (bool predicated : {false, true}) {
        std::printf("# running %s sel=%.0f%% %s...\n", e.name().c_str(),
                    s * 100, predicated ? "branch-free" : "branched");
        std::fflush(stdout);
        const auto params =
            uolap::engine::MakeSelectionParams(ctx.db(), s, predicated);
        const std::string label =
            TablePrinter::Pct(s, 0) + (predicated ? " Br.-free" : " Br.");
        cells.push_back(
            {label, ctx.Profile(e.name() + " " + label, [&](Workers& w) {
               e.Selection(w, params);
             })});
      }
    }
    return cells;
  };

  const std::vector<Cell> typer_cells = run_engine(ctx.engine("typer"));
  const std::vector<Cell> tw_cells = run_engine(ctx.engine("tectorwise"));

  auto emit_pair = [&](const char* fig_resp, const char* fig_stall,
                       const char* name, const std::vector<Cell>& cells) {
    {
      TablePrinter t(std::string(fig_resp) + ": response time breakdown, " +
                     name + " branched vs branch-free selection");
      t.SetHeader(uolap::harness::TimeHeader("selectivity/variant"));
      for (const auto& c : cells) {
        t.AddRow(uolap::harness::TimeRow(c.label, c.r));
      }
      ctx.Emit(t);
    }
    {
      TablePrinter t(std::string(fig_stall) + ": stall time breakdown, " +
                     name + " branched vs branch-free selection");
      t.SetHeader(uolap::harness::StallHeader("selectivity/variant"));
      for (const auto& c : cells) {
        t.AddRow(uolap::harness::StallRow(c.label, c.r.cycles));
      }
      ctx.Emit(t);
    }
  };
  emit_pair("Figure 17", "Figure 18", "Typer", typer_cells);
  emit_pair("Figure 19", "Figure 20", "Tectorwise", tw_cells);

  {
    TablePrinter t(
        "Figure 21: single-core bandwidth for the predicated selection "
        "(MAX = 12 GB/s; paper: Typer stable/high, Tectorwise lower with "
        "a peak at 50%)");
    t.SetHeader({"system/selectivity", "Bandwidth (GB/s)"});
    for (size_t i = 0; i < selectivities.size(); ++i) {
      t.AddRow({"Typer " + TablePrinter::Pct(selectivities[i], 0),
                TablePrinter::Fmt(typer_cells[i * 2 + 1].r.bandwidth_gbps,
                                  2)});
    }
    for (size_t i = 0; i < selectivities.size(); ++i) {
      t.AddRow({"Tectorwise " + TablePrinter::Pct(selectivities[i], 0),
                TablePrinter::Fmt(tw_cells[i * 2 + 1].r.bandwidth_gbps, 2)});
    }
    ctx.Emit(t);
  }

  {
    // Predicated Q6 (in-text): response-time change and bandwidth.
    TablePrinter t(
        "Section 7 (text): predicated TPC-H Q6 (paper: Typer -11%, "
        "Tectorwise -52%; bandwidth 4.7->6.9 and 1->4.7 GB/s)");
    t.SetHeader({"system", "Branched ms", "Predicated ms", "Change",
                 "Branched GB/s", "Predicated GB/s"});
    for (OlapEngine* e :
         std::vector<OlapEngine*>{&ctx.engine("typer"), &ctx.engine("tectorwise")}) {
      const auto branched =
          ctx.Profile(e->name() + " Q6 branched", [&](Workers& w) {
            e->Q6(w, uolap::engine::MakeQ6Params(false));
          });
      const auto predicated =
          ctx.Profile(e->name() + " Q6 predicated", [&](Workers& w) {
            e->Q6(w, uolap::engine::MakeQ6Params(true));
          });
      const double change =
          (predicated.total_cycles - branched.total_cycles) /
          branched.total_cycles;
      t.AddRow({e->name(), TablePrinter::Fmt(branched.time_ms, 1),
                TablePrinter::Fmt(predicated.time_ms, 1),
                TablePrinter::Pct(change, 0),
                TablePrinter::Fmt(branched.bandwidth_gbps, 2),
                TablePrinter::Fmt(predicated.bandwidth_gbps, 2)});
    }
    ctx.Emit(t);
  }
  return 0;
}
