#ifndef UOLAP_CORE_RING_H_
#define UOLAP_CORE_RING_H_
// Fixture: one half of an include cycle (LAY-CYCLE anchors at loop.h,
// the lexicographically smaller file).
#include "core/loop.h"

namespace uolap::core {
struct Ring {
  int size = 0;
};
}  // namespace uolap::core

#endif  // UOLAP_CORE_RING_H_
