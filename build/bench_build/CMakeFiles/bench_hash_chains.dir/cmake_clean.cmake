file(REMOVE_RECURSE
  "../bench/bench_hash_chains"
  "../bench/bench_hash_chains.pdb"
  "CMakeFiles/bench_hash_chains.dir/bench_hash_chains.cc.o"
  "CMakeFiles/bench_hash_chains.dir/bench_hash_chains.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hash_chains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
