// Tectorwise hash-join micro-benchmarks.

#include <vector>

#include "common/macros.h"
#include "engines/tectorwise/primitives.h"
#include "engines/tectorwise/tw_engine.h"
#include "storage/column_view.h"

namespace uolap::tectorwise {

using engine::JoinHashTable;
using engine::JoinSize;
using engine::PartitionRange;
using engine::RowRange;
using engine::Workers;
using storage::ColumnView;
using tpch::Money;

namespace {

void SharedBuild(Workers& w, bool simd, JoinHashTable* ht,
                 const std::vector<int64_t>& keys,
                 const std::vector<int64_t>& payloads,
                 const char* region_name) {
  const size_t n = keys.size();
  for (size_t t = 0; t < w.count(); ++t) {
    core::Core& core = *w.cores[t];
    core::ScopedRegion build_region(core, "build");
    const RowRange r = PartitionRange(n, t, w.count());
    core.SetCodeRegion({region_name, 2048});
    core.SetMlpHint(simd ? core::kMlpSimdGather : core::kMlpVectorProbe);
    ColumnView<int64_t> key(keys, &core);
    ColumnView<int64_t> pay(payloads, &core);
    for (size_t i = r.begin; i < r.end; ++i) {
      ht->Insert(core, key.Get(i), pay.Get(i));
    }
    core::InstrMix loop;
    loop.alu = 1;
    loop.branch = 1;
    core.RetireN(loop, r.size());
    core.SetMlpHint(core::kMlpDefault);
  }
}

/// Probe phase of the large join (lineitem |x| orders), vectorized: probe
/// primitive producing a match selection vector, then the four-column
/// selected projection. Per-worker scratch is allocated serially before
/// the ForEach so simulated addresses stay schedule-independent.
Money LargeJoinProbe(const tpch::Database& db, Workers& w, bool simd,
                     const JoinHashTable& ht) {
  const auto& l = db.lineitem;
  struct Scratch {
    std::vector<uint32_t> match_sel;
    std::vector<int64_t> payloads, v1, v2, v3;
    Scratch()
        : match_sel(kVecSize), payloads(kVecSize), v1(kVecSize),
          v2(kVecSize), v3(kVecSize) {}
  };
  std::vector<Scratch> scratch(w.count());
  std::vector<Money> partial(w.count(), 0);
  w.ForEach([&](size_t t) {
    core::Core& core = *w.cores[t];
    const RowRange r = PartitionRange(l.size(), t, w.count());
    core.SetCodeRegion({"tw/join-probe-large", 4096});
    VecCtx ctx{&core, simd};

    std::vector<uint32_t>& match_sel = scratch[t].match_sel;
    std::vector<int64_t>& payloads = scratch[t].payloads;
    std::vector<int64_t>& v1 = scratch[t].v1;
    std::vector<int64_t>& v2 = scratch[t].v2;
    std::vector<int64_t>& v3 = scratch[t].v3;

    Money acc = 0;
    for (size_t base = r.begin; base < r.end; base += kVecSize) {
      const size_t m = std::min(kVecSize, r.end - base);
      size_t matches;
      {
        core::ScopedRegion probe_region(core, "probe");
        matches = HtProbeSel(
            ctx, engine::branch_site::kJoinChain, ht,
            l.orderkey.data() + base, 0, nullptr, m, match_sel.data(),
            payloads.data());
      }
      if (matches == 0) continue;
      core::ScopedRegion mat_region(core, "materialize");
      MapAddSel(ctx, v1.data(), l.extendedprice.data() + base,
                l.discount.data() + base, match_sel.data(), matches);
      MapAddDenseGather(ctx, v2.data(), v1.data(), l.tax.data() + base,
                        match_sel.data(), matches);
      MapAddDenseGather(ctx, v3.data(), v2.data(), l.quantity.data() + base,
                        match_sel.data(), matches);
      acc += SumColumn(ctx, v3.data(), matches);
    }
    partial[t] = acc;
  });
  Money total = 0;
  for (Money a : partial) total += a;
  return total;
}

}  // namespace

Money TectorwiseEngine::Join(Workers& w, JoinSize size) const {
  switch (size) {
    case JoinSize::kSmall: {
      JoinHashTable ht(db_.nation.size());
      SharedBuild(w, simd_, &ht, db_.nation.nationkey, db_.nation.regionkey,
                  "tw/join-build-small");
      const auto& s = db_.supplier;
      std::vector<std::vector<uint32_t>> sel_scr(w.count());
      std::vector<std::vector<int64_t>> v1_scr(w.count());
      for (size_t t = 0; t < w.count(); ++t) {
        sel_scr[t].resize(kVecSize);
        v1_scr[t].resize(kVecSize);
      }
      std::vector<Money> partial(w.count(), 0);
      w.ForEach([&](size_t t) {
        core::Core& core = *w.cores[t];
        core::ScopedRegion probe_region(core, "probe");
        const RowRange r = PartitionRange(s.size(), t, w.count());
        core.SetCodeRegion({"tw/join-probe-small", 3072});
        VecCtx ctx{&core, simd_};
        std::vector<uint32_t>& match_sel = sel_scr[t];
        std::vector<int64_t>& v1 = v1_scr[t];
        Money acc = 0;
        for (size_t base = r.begin; base < r.end; base += kVecSize) {
          const size_t m = std::min(kVecSize, r.end - base);
          const size_t matches = HtProbeSel(
              ctx, engine::branch_site::kJoinChain, ht,
              s.nationkey.data() + base, 0, nullptr, m, match_sel.data(),
              nullptr);
          if (matches == 0) continue;
          MapAddSel(ctx, v1.data(), s.acctbal.data() + base,
                    s.suppkey.data() + base, match_sel.data(), matches);
          acc += SumColumn(ctx, v1.data(), matches);
        }
        partial[t] = acc;
      });
      Money total = 0;
      for (Money a : partial) total += a;
      return total;
    }
    case JoinSize::kMedium: {
      JoinHashTable ht(db_.supplier.size());
      SharedBuild(w, simd_, &ht, db_.supplier.suppkey,
                  db_.supplier.nationkey, "tw/join-build-medium");
      const auto& ps = db_.partsupp;
      std::vector<std::vector<uint32_t>> sel_scr(w.count());
      std::vector<std::vector<int64_t>> v1_scr(w.count());
      for (size_t t = 0; t < w.count(); ++t) {
        sel_scr[t].resize(kVecSize);
        v1_scr[t].resize(kVecSize);
      }
      std::vector<Money> partial(w.count(), 0);
      w.ForEach([&](size_t t) {
        core::Core& core = *w.cores[t];
        core::ScopedRegion probe_region(core, "probe");
        const RowRange r = PartitionRange(ps.size(), t, w.count());
        core.SetCodeRegion({"tw/join-probe-medium", 3072});
        VecCtx ctx{&core, simd_};
        std::vector<uint32_t>& match_sel = sel_scr[t];
        std::vector<int64_t>& v1 = v1_scr[t];
        Money acc = 0;
        for (size_t base = r.begin; base < r.end; base += kVecSize) {
          const size_t m = std::min(kVecSize, r.end - base);
          const size_t matches = HtProbeSel(
              ctx, engine::branch_site::kJoinChain, ht,
              ps.suppkey.data() + base, 0, nullptr, m, match_sel.data(),
              nullptr);
          if (matches == 0) continue;
          MapAddSel(ctx, v1.data(), ps.availqty.data() + base,
                    ps.supplycost.data() + base, match_sel.data(), matches);
          acc += SumColumn(ctx, v1.data(), matches);
        }
        partial[t] = acc;
      });
      Money total = 0;
      for (Money a : partial) total += a;
      return total;
    }
    case JoinSize::kLarge: {
      JoinHashTable ht(db_.orders.size());
      SharedBuild(w, simd_, &ht, db_.orders.orderkey, db_.orders.custkey,
                  "tw/join-build-large");
      return LargeJoinProbe(db_, w, simd_, ht);
    }
  }
  UOLAP_CHECK_MSG(false, "unreachable join size");
  return 0;
}

Money TectorwiseEngine::LargeJoinProbeOnly(Workers& w) const {
  // Build natively (uncharged) so the profile isolates the probe phase,
  // as the paper's Section 8.2 does.
  JoinHashTable ht(db_.orders.size());
  core::Core scratch(w.cores[0]->config());
  for (size_t i = 0; i < db_.orders.size(); ++i) {
    ht.Insert(scratch, db_.orders.orderkey[i], db_.orders.custkey[i]);
  }
  return LargeJoinProbe(db_, w, simd_, ht);
}

}  // namespace uolap::tectorwise
