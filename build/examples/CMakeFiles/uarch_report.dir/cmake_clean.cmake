file(REMOVE_RECURSE
  "CMakeFiles/uarch_report.dir/uarch_report.cpp.o"
  "CMakeFiles/uarch_report.dir/uarch_report.cpp.o.d"
  "uarch_report"
  "uarch_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uarch_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
