#include "engine/hash_table.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/calibration.h"
#include "core/config.h"

namespace uolap::engine {
namespace {

core::Core MakeCore() { return core::Core(core::MachineConfig::Broadwell()); }

/// Shorthand: find-or-create `key` and add `delta` to its first slot.
void agg(AggHashTable<1>& table, core::Core& core, int64_t key,
         int64_t delta) {
  auto* e = table.FindOrCreate(core, 2, key);
  table.Add(core, e, 0, delta);
}

TEST(JoinHashTableTest, InsertAndProbeUnique) {
  core::Core core = MakeCore();
  JoinHashTable ht(100);
  for (int64_t k = 1; k <= 100; ++k) ht.Insert(core, k, k * 10);
  for (int64_t k = 1; k <= 100; ++k) {
    int64_t payload = -1;
    const int matches = ht.Probe(core, 1, k, [&](int64_t p) { payload = p; });
    EXPECT_EQ(matches, 1);
    EXPECT_EQ(payload, k * 10);
  }
}

TEST(JoinHashTableTest, MissingKeysDoNotMatch) {
  core::Core core = MakeCore();
  JoinHashTable ht(10);
  for (int64_t k = 0; k < 10; ++k) ht.Insert(core, k, k);
  int called = 0;
  EXPECT_EQ(ht.Probe(core, 1, 999, [&](int64_t) { ++called; }), 0);
  EXPECT_EQ(called, 0);
}

TEST(JoinHashTableTest, DuplicateKeysAllMatch) {
  core::Core core = MakeCore();
  JoinHashTable ht(10);
  ht.Insert(core, 7, 1);
  ht.Insert(core, 7, 2);
  ht.Insert(core, 7, 3);
  int64_t sum = 0;
  EXPECT_EQ(ht.Probe(core, 1, 7, [&](int64_t p) { sum += p; }), 3);
  EXPECT_EQ(sum, 6);
}

TEST(JoinHashTableTest, ZeroKeyWorks) {
  core::Core core = MakeCore();
  JoinHashTable ht(4);
  ht.Insert(core, 0, 99);
  int64_t payload = -1;
  EXPECT_EQ(ht.Probe(core, 1, 0, [&](int64_t p) { payload = p; }), 1);
  EXPECT_EQ(payload, 99);
}

TEST(JoinHashTableTest, ChainStatsReasonableForUniqueKeys) {
  core::Core core = MakeCore();
  JoinHashTable ht(10000);
  for (int64_t k = 1; k <= 10000; ++k) ht.Insert(core, k, k);
  ChainStats s = ht.ComputeChainStats();
  EXPECT_EQ(s.entries, 10000u);
  // Buckets = 2x entries: mean chain ~0.5, short maxima.
  EXPECT_NEAR(s.mean, 0.5, 0.2);
  EXPECT_LT(s.max, 10u);
}

TEST(JoinHashTableTest, ProbeDrivesBranchesAndHashCost) {
  core::Core core = MakeCore();
  JoinHashTable ht(16);
  for (int64_t k = 0; k < 16; ++k) ht.Insert(core, k, k);
  core::CoreCounters before = core.counters();
  for (int64_t k = 0; k < 16; ++k) {
    ht.Probe(core, 1, k, [](int64_t) {});
  }
  core::CoreCounters after = core.counters();
  EXPECT_GT(after.branch_events, before.branch_events);
  EXPECT_GT(after.mix.mul, before.mix.mul);  // hash multiplies
}

TEST(JoinHashTableTest, ProbeFirstBlockMatchesPerKeyLoop) {
  // ProbeFirstBlock must be counter-identical to SetMlpHint + a plain
  // ProbeFirst loop — same matches, same simulated counters bit for bit.
  core::Core build = MakeCore();
  JoinHashTable ht(64);
  for (int64_t k = 0; k < 64; ++k) ht.Insert(build, k, k * 7);
  std::vector<int64_t> keys;
  for (int64_t i = 0; i < 500; ++i) keys.push_back((i * 13) % 90);  // misses too

  core::Core a = MakeCore();
  int64_t sum_a = 0;
  a.SetMlpHint(core::kMlpScalarProbe);
  int64_t payload;
  for (size_t i = 0; i < keys.size(); ++i) {
    if (ht.ProbeFirst(a, 3, keys[i], &payload)) sum_a += payload;
  }

  core::Core b = MakeCore();
  int64_t sum_b = 0;
  ht.ProbeFirstBlock(
      b, 3, core::kMlpScalarProbe, 0, keys.size(),
      [&](size_t i) { return keys[i]; },
      [&](size_t, int64_t p) { sum_b += p; });

  EXPECT_EQ(sum_a, sum_b);
  a.Finalize();
  b.Finalize();
  const core::CoreCounters ca = a.counters();
  const core::CoreCounters cb = b.counters();
  EXPECT_EQ(ca.mix.load, cb.mix.load);
  EXPECT_EQ(ca.mix.alu, cb.mix.alu);
  EXPECT_EQ(ca.branch_events, cb.branch_events);
  EXPECT_EQ(ca.branch_mispredicts, cb.branch_mispredicts);
  EXPECT_EQ(ca.exec_stall_cycles, cb.exec_stall_cycles);
  EXPECT_EQ(ca.mem.data_accesses, cb.mem.data_accesses);
  EXPECT_EQ(ca.mem.l1d_hits, cb.mem.l1d_hits);
  EXPECT_EQ(ca.mem.dtlb_hits, cb.mem.dtlb_hits);
  EXPECT_EQ(ca.mem.rand_dcache_cycles, cb.mem.rand_dcache_cycles);
  EXPECT_EQ(ca.mem.tlb_cycles, cb.mem.tlb_cycles);
}

TEST(JoinHashTableTest, MemoryBytesGrowWithEntries) {
  core::Core core = MakeCore();
  JoinHashTable small(100), large(100000);
  EXPECT_LT(small.MemoryBytes(), large.MemoryBytes());
}

TEST(AggHashTableTest, GroupsAccumulate) {
  core::Core core = MakeCore();
  AggHashTable<2> agg(16);
  for (int64_t i = 0; i < 100; ++i) {
    auto* e = agg.FindOrCreate(core, 2, i % 4);
    agg.Add(core, e, 0, 1);
    agg.Add(core, e, 1, i);
  }
  EXPECT_EQ(agg.num_groups(), 4u);
  int64_t count = 0, sum = 0;
  for (const auto& e : agg.entries()) {
    count += e.aggs[0];
    sum += e.aggs[1];
  }
  EXPECT_EQ(count, 100);
  EXPECT_EQ(sum, 99 * 100 / 2);
}

TEST(AggHashTableTest, ManyGroups) {
  core::Core core = MakeCore();
  AggHashTable<1> agg(1 << 14);
  const int64_t n = 20000;
  for (int64_t i = 0; i < n; ++i) {
    auto* e = agg.FindOrCreate(core, 2, i);
    agg.Add(core, e, 0, i);
  }
  EXPECT_EQ(agg.num_groups(), static_cast<size_t>(n));
  // Every group holds exactly its own key as sum.
  for (const auto& e : agg.entries()) {
    ASSERT_EQ(e.aggs[0], e.key);
  }
}

TEST(AggHashTableTest, InsertionOrderDoesNotChangeAggregates) {
  core::Core core_a = MakeCore();
  core::Core core_b = MakeCore();
  AggHashTable<1> a(64), b(64);
  for (int64_t i = 0; i < 1000; ++i) {
    agg(a, core_a, i % 10, i);
  }
  for (int64_t i = 999; i >= 0; --i) {
    agg(b, core_b, i % 10, i);
  }
  int64_t sum_a = 0, sum_b = 0;
  for (const auto& e : a.entries()) sum_a += e.aggs[0];
  for (const auto& e : b.entries()) sum_b += e.aggs[0];
  EXPECT_EQ(sum_a, sum_b);
  EXPECT_EQ(a.num_groups(), b.num_groups());
}

TEST(AggHashTableTest, ChainStatsComputed) {
  core::Core core = MakeCore();
  AggHashTable<1> table(1024);
  for (int64_t i = 0; i < 1024; ++i) {
    agg(table, core, i, 1);
  }
  ChainStats s = table.ComputeChainStats();
  EXPECT_EQ(s.entries, 1024u);
  EXPECT_GT(s.mean, 0.0);
  EXPECT_GE(static_cast<double>(s.max), s.mean);
}

}  // namespace
}  // namespace uolap::engine
