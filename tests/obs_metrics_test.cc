// Tests of the serving-telemetry metrics layer: name validation, the
// registry's counter/gauge/histogram semantics, order-invariant snapshot
// merging (the per-core aggregation contract), the Prometheus text
// exposition bytes, snapshot diffing, SLO spec parsing, and profile
// schema version back-compat (v2–v4 files must keep parsing under the v5
// reader).

#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "obs/json.h"
#include "obs/metric_names.h"
#include "obs/profile_export.h"
#include "obs/slo.h"

namespace uolap::obs {
namespace {

TEST(MetricNameTest, AcceptsLoweredDottedNames) {
  EXPECT_TRUE(IsValidMetricName("server.latency_ms"));
  EXPECT_TRUE(IsValidMetricName("a"));
  EXPECT_TRUE(IsValidMetricName("a1_b.c2"));
  EXPECT_TRUE(IsValidMetricName("engine.dispatch_total"));
  // Later segments may lead with a digit or underscore (the grammar is
  // [a-z0-9_]+ after the first segment); only the name head is strict.
  EXPECT_TRUE(IsValidMetricName("server.1x"));
}

TEST(MetricNameTest, RejectsEverythingElse) {
  EXPECT_FALSE(IsValidMetricName(""));
  EXPECT_FALSE(IsValidMetricName("Server.latency"));
  EXPECT_FALSE(IsValidMetricName("1server"));
  EXPECT_FALSE(IsValidMetricName("_server"));
  EXPECT_FALSE(IsValidMetricName("server."));
  EXPECT_FALSE(IsValidMetricName(".server"));
  EXPECT_FALSE(IsValidMetricName("server..x"));
  EXPECT_FALSE(IsValidMetricName("server latency"));
  EXPECT_FALSE(IsValidMetricName("server-latency"));
}

TEST(MetricsRegistryTest, CountersGaugesHistograms) {
  MetricsRegistry reg;
  reg.Count("q.total");
  reg.Count("q.total", 4);
  reg.Count("q.total", "tenant", "a", 2);
  reg.SetGauge("vtime.ms", 3.5);
  reg.MaxGauge("peak.gbps", 10.0);
  reg.MaxGauge("peak.gbps", 7.0);  // lower: keeps 10
  reg.Observe("lat.ms", 0.5);
  reg.Observe("lat.ms", 3.0);

  const MetricsSnapshot snap = reg.Snapshot();
  const MetricFamily* q = snap.Find("q.total");
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(q->kind, MetricKind::kCounter);
  ASSERT_EQ(q->series.size(), 2u);  // unlabeled + tenant=a, sorted
  EXPECT_EQ(q->series[0].label_key, "");
  EXPECT_EQ(q->series[0].counter, 5u);
  EXPECT_EQ(q->series[1].label_value, "a");
  EXPECT_EQ(q->series[1].counter, 2u);

  const MetricFamily* peak = snap.Find("peak.gbps");
  ASSERT_NE(peak, nullptr);
  EXPECT_EQ(peak->series[0].gauge, 10.0);

  const MetricFamily* lat = snap.Find("lat.ms");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->series[0].histogram.count, 2u);
  // 0.5 lands in bucket 0 ([0,1)), 3.0 in bucket 2 ([2,4)).
  ASSERT_GE(lat->series[0].histogram.buckets.size(), 3u);
  EXPECT_EQ(lat->series[0].histogram.buckets[0], 1u);
  EXPECT_EQ(lat->series[0].histogram.buckets[1], 0u);
  EXPECT_EQ(lat->series[0].histogram.buckets[2], 1u);
  EXPECT_EQ(lat->series[0].histogram.sum_micro, 3'500'000u);

  reg.Reset();
  EXPECT_TRUE(reg.Snapshot().empty());
}

TEST(MetricsRegistryTest, Log2BucketEdges) {
  EXPECT_EQ(Log2Bucket(0.0), 0u);
  EXPECT_EQ(Log2Bucket(0.99), 0u);
  EXPECT_EQ(Log2Bucket(1.0), 1u);
  EXPECT_EQ(Log2Bucket(1.99), 1u);
  EXPECT_EQ(Log2Bucket(2.0), 2u);
  EXPECT_EQ(Log2Bucket(1024.0), 11u);
  EXPECT_EQ(Log2Bucket(1e300), 63u);  // capped
}

/// The per-core aggregation contract: merging N snapshots must be
/// order-invariant down to the byte. Histogram sums are fixed-point
/// micro-units precisely so this holds for every permutation.
TEST(MetricsSnapshotTest, MergeIsOrderInvariant) {
  constexpr int kCores = 8;
  constexpr int kObservationsPerCore = 64;
  std::vector<MetricsSnapshot> per_core;
  for (int c = 0; c < kCores; ++c) {
    MetricsRegistry reg;
    Rng rng(/*seed=*/1000 + c);
    for (int i = 0; i < kObservationsPerCore; ++i) {
      reg.Observe("core.latency_ms", rng.NextDouble() * 50.0);
      reg.Count("core.ops_total", "core", std::to_string(c));
    }
    reg.SetGauge("core.peak", rng.NextDouble() * 100.0);
    per_core.push_back(reg.Snapshot());
  }

  auto merge_in_order = [&](const std::vector<int>& order) {
    MetricsSnapshot acc;
    for (const int idx : order) acc.Merge(per_core[idx]);
    return ToPrometheusText(acc);
  };

  std::vector<int> order;
  for (int c = 0; c < kCores; ++c) order.push_back(c);
  const std::string forward = merge_in_order(order);

  Rng shuffle_rng(7);
  for (int trial = 0; trial < 16; ++trial) {
    for (size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1],
                order[static_cast<size_t>(shuffle_rng.Uniform(
                    0, static_cast<int64_t>(i) - 1))]);
    }
    EXPECT_EQ(merge_in_order(order), forward)
        << "merge order changed the exposition bytes (trial " << trial
        << ")";
  }
}

TEST(MetricsSnapshotTest, DiffSubtractsCountersAndKeepsGauges) {
  MetricsRegistry reg;
  reg.Count("ops.total", 10);
  reg.Observe("lat.ms", 1.0);
  const MetricsSnapshot base = reg.Snapshot();
  reg.Count("ops.total", 5);
  reg.Observe("lat.ms", 3.0);
  reg.SetGauge("vtime.ms", 42.0);
  const MetricsSnapshot now = reg.Snapshot();

  const MetricsSnapshot delta = now.Diff(base);
  EXPECT_EQ(delta.Find("ops.total")->series[0].counter, 5u);
  EXPECT_EQ(delta.Find("lat.ms")->series[0].histogram.count, 1u);
  EXPECT_EQ(delta.Find("vtime.ms")->series[0].gauge, 42.0);
  // Diff against a later snapshot saturates at zero, never wraps.
  const MetricsSnapshot inverted = base.Diff(now);
  EXPECT_EQ(inverted.Find("ops.total")->series[0].counter, 0u);
}

/// Byte-golden for the Prometheus exposition: the serve-path smoke stage
/// greps this output, so format drift must be a conscious choice.
TEST(MetricsSnapshotTest, PrometheusTextMatchesGolden) {
  MetricsRegistry reg;
  reg.Count("server.queries_total", "tenant", "a", 3);
  reg.SetGauge("server.vtime_ms", 12.5);
  reg.Observe("server.latency_ms", 0.5);
  reg.Observe("server.latency_ms", 3.0);
  const char kGolden[] =
      "# TYPE server_latency_ms histogram\n"
      "server_latency_ms_bucket{le=\"1\"} 1\n"
      "server_latency_ms_bucket{le=\"2\"} 1\n"
      "server_latency_ms_bucket{le=\"4\"} 2\n"
      "server_latency_ms_bucket{le=\"+Inf\"} 2\n"
      "server_latency_ms_sum 3.5\n"
      "server_latency_ms_count 2\n"
      "# TYPE server_queries_total counter\n"
      "server_queries_total{tenant=\"a\"} 3\n"
      "# TYPE server_vtime_ms gauge\n"
      "server_vtime_ms 12.5\n";
  EXPECT_EQ(ToPrometheusText(reg.Snapshot()), kGolden);
}

TEST(SloSpecTest, ParsesAndCanonicalizes) {
  auto specs =
      ParseSloSpecs("tenant0:p99<12ms, *:p50<3.5 ,*:qdepth<64");
  ASSERT_TRUE(specs.ok()) << specs.status().ToString();
  ASSERT_EQ(specs.value().size(), 3u);
  EXPECT_EQ(specs.value()[0].ToString(), "tenant0:p99<12ms");
  EXPECT_EQ(specs.value()[0].metric, SloMetric::kP99);
  EXPECT_EQ(specs.value()[0].threshold, 12.0);
  EXPECT_EQ(specs.value()[1].ToString(), "*:p50<3.5ms");
  EXPECT_EQ(specs.value()[2].ToString(), "*:qdepth<64");
  EXPECT_TRUE(ParseSloSpecs("").value().empty());
}

TEST(SloSpecTest, RejectsMalformedClauses) {
  EXPECT_FALSE(ParseSloSpecs("tenant0").ok());
  EXPECT_FALSE(ParseSloSpecs("tenant0:p99").ok());
  EXPECT_FALSE(ParseSloSpecs("tenant0:p99>12").ok());
  EXPECT_FALSE(ParseSloSpecs("tenant0:p42<12").ok());
  EXPECT_FALSE(ParseSloSpecs("tenant0:p99<abc").ok());
  EXPECT_FALSE(ParseSloSpecs("tenant0:p99<-3").ok());
  EXPECT_FALSE(ParseSloSpecs(":p99<3").ok());
  // qdepth is pool-wide: a per-tenant subject is a spec bug.
  EXPECT_FALSE(ParseSloSpecs("tenant0:qdepth<8").ok());
}

TEST(ProfileVersionTest, SupportedRange) {
  EXPECT_FALSE(IsSupportedProfileVersion(1));
  EXPECT_TRUE(IsSupportedProfileVersion(2));
  EXPECT_TRUE(IsSupportedProfileVersion(3));
  EXPECT_TRUE(IsSupportedProfileVersion(kProfileSchemaVersion));
  EXPECT_FALSE(IsSupportedProfileVersion(kProfileSchemaVersion + 1));
  EXPECT_FALSE(IsSupportedProfileVersion(-1));
}

/// v2 files (pre-serving) and v3 files (server block, no telemetry) keep
/// parsing under the v4 reader: newer fields simply read as absent.
TEST(ProfileVersionTest, OlderProfilesStillParse) {
  const char kV2[] = R"({
    "schema": "uolap-profile", "version": 2, "bench": "legacy",
    "runs": [{"label": "scan", "threads": 1, "makespan_cycles": 100}]
  })";
  const char kV3[] = R"({
    "schema": "uolap-profile", "version": 3, "bench": "legacy",
    "runs": [],
    "server": {"cores": 4, "submitted": 8, "completed": 8,
               "vtime_ms": 1.5, "tenants": [{"name": "a", "p99_ms": 2}]}
  })";
  for (const char* text : {kV2, kV3}) {
    const auto doc = ParseJson(text);
    ASSERT_TRUE(doc.ok()) << doc.status().ToString();
    const JsonValue& v = doc.value();
    EXPECT_EQ(v.GetString("schema"), kProfileSchemaName);
    EXPECT_TRUE(IsSupportedProfileVersion(
        static_cast<int>(v.GetNumber("version"))));
    // v4-only fields are absent, not errors.
    EXPECT_EQ(v.Find("metrics"), nullptr);
    const JsonValue* runs = v.Find("runs");
    ASSERT_NE(runs, nullptr);
    EXPECT_TRUE(runs->is_array());
  }
  const auto v3 = ParseJson(kV3);
  const JsonValue* server = v3.value().Find("server");
  ASSERT_NE(server, nullptr);
  EXPECT_EQ(server->GetNumber("completed"), 8.0);
  EXPECT_EQ(server->Find("epochs"), nullptr);
  // v5 robustness rollups are absent in older files and read as their
  // pre-robustness values: zero drops, the "none" policy, no fault plan.
  EXPECT_EQ(server->Find("admitted"), nullptr);
  EXPECT_EQ(server->GetNumber("rejected"), 0.0);
  EXPECT_EQ(server->GetNumber("timed_out"), 0.0);
  EXPECT_EQ(server->GetString("shed_policy", "none"), "none");
  EXPECT_EQ(server->GetString("fault_plan"), "");
}

/// A v5 server block round-trips its robustness rollups through the
/// parser, and a v4 file (telemetry but no robustness fields) still
/// parses under the v5 reader.
TEST(ProfileVersionTest, V5RobustnessFieldsParse) {
  const char kV5[] = R"({
    "schema": "uolap-profile", "version": 5, "bench": "serve",
    "runs": [],
    "server": {"cores": 4, "submitted": 10, "completed": 6,
               "admitted": 9, "rejected": 1, "shed": 2, "timed_out": 1,
               "failed": 0, "retries": 3, "faults_injected": 4,
               "slowdowns_injected": 2, "brownout_downgrades": 1,
               "shed_policy": "both", "fault_plan": "seed=7,fail=0.1",
               "vtime_ms": 2.5,
               "tenants": [{"name": "a", "admitted": 9, "rejected": 1,
                            "shed": 2, "timed_out": 1, "failed": 0,
                            "retries": 3}]}
  })";
  const auto doc = ParseJson(kV5);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_TRUE(IsSupportedProfileVersion(
      static_cast<int>(doc.value().GetNumber("version"))));
  const JsonValue* server = doc.value().Find("server");
  ASSERT_NE(server, nullptr);
  EXPECT_EQ(server->GetNumber("admitted"), 9.0);
  EXPECT_EQ(server->GetNumber("shed"), 2.0);
  EXPECT_EQ(server->GetNumber("retries"), 3.0);
  EXPECT_EQ(server->GetString("shed_policy"), "both");
  EXPECT_EQ(server->GetString("fault_plan"), "seed=7,fail=0.1");
  // The accounting invariant holds in the serialized rollup too.
  EXPECT_EQ(server->GetNumber("admitted"),
            server->GetNumber("completed") + server->GetNumber("shed") +
                server->GetNumber("timed_out") +
                server->GetNumber("failed"));

  const char kV4[] = R"({
    "schema": "uolap-profile", "version": 4, "bench": "serve",
    "runs": [],
    "server": {"cores": 4, "submitted": 8, "completed": 8,
               "epoch_ms": 5, "epochs": [], "trace_sample_n": 0}
  })";
  const auto v4 = ParseJson(kV4);
  ASSERT_TRUE(v4.ok());
  EXPECT_TRUE(IsSupportedProfileVersion(
      static_cast<int>(v4.value().GetNumber("version"))));
  EXPECT_EQ(v4.value().Find("server")->Find("admitted"), nullptr);
}

/// The robustness metric names obey the canonical grammar and publish
/// per-tenant series like the rest of the serving surface.
TEST(MetricNameTest, RobustnessNamesAreValidAndPublish) {
  for (const char* name :
       {metric_names::kServerQueriesRejected,
        metric_names::kServerQueriesShed,
        metric_names::kServerQueriesTimedOut,
        metric_names::kServerQueriesFailed, metric_names::kServerRetriesTotal,
        metric_names::kServerBackoffMs, metric_names::kServerFaultsInjected,
        metric_names::kServerSlowdownsInjected,
        metric_names::kServerBrownoutDowngrades}) {
    EXPECT_TRUE(IsValidMetricName(name)) << name;
  }
  MetricsRegistry reg;
  reg.Count(metric_names::kServerQueriesShed, "tenant", "a");
  reg.Observe(metric_names::kServerBackoffMs, "tenant", "a", 2.0);
  const MetricsSnapshot snap = reg.Snapshot();
  const MetricFamily* shed = snap.Find(metric_names::kServerQueriesShed);
  ASSERT_NE(shed, nullptr);
  EXPECT_EQ(shed->kind, MetricKind::kCounter);
  ASSERT_EQ(shed->series.size(), 1u);
  EXPECT_EQ(shed->series[0].label_value, "a");
  const MetricFamily* backoff = snap.Find(metric_names::kServerBackoffMs);
  ASSERT_NE(backoff, nullptr);
  EXPECT_EQ(backoff->kind, MetricKind::kHistogram);
}

}  // namespace
}  // namespace uolap::obs
