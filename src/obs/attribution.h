#ifndef UOLAP_OBS_ATTRIBUTION_H_
#define UOLAP_OBS_ATTRIBUTION_H_

#include <vector>

#include "core/config.h"
#include "core/counters.h"
#include "core/topdown.h"
#include "obs/region_profiler.h"

namespace uolap::obs {

/// Splits the whole-run Top-Down breakdown `Analyze(total, bw_scale)`
/// across counter deltas `parts` (which must tile `total`, e.g. the
/// exclusive deltas of a region tree) so the parts sum back to the whole
/// exactly (up to floating-point addition order, << 1e-9 relative):
///
///  - components that the model computes as a sum over events (retiring,
///    branch mispredictions, icache, execution, and the latency-accumulated
///    dcache terms) are evaluated directly on each delta — they are linear,
///    so the shares are the model's own answer for that interval;
///  - components with a nonlinearity across the whole run (decode
///    back-pressure `max(0, decode - retiring)`, the random-access
///    bandwidth clamp `max(latency, bytes/bw)`, and the sequential
///    throughput residual `max(0, mem_time - overlap * t_other)`) are
///    distributed proportionally to each delta's standalone demand for
///    that component — the per-region view VTune-style sampling would give,
///    while keeping leaf-sum == whole-run refutable.
///
/// This is what makes the per-operator breakdowns trustworthy as a
/// decomposition: nothing is double-counted and nothing is dropped.
std::vector<core::CycleBreakdown> AttributeCycles(
    const core::MachineConfig& config, const core::CoreCounters& total,
    const std::vector<core::CoreCounters>& parts, double bw_scale = 1.0);

/// Fills `excl_cycles`/`incl_cycles` of every node from the raw counters:
/// exclusive breakdowns via AttributeCycles over all nodes' exclusive
/// deltas (so they sum to the whole-run breakdown), inclusive breakdowns
/// as the subtree sums. `bw_scale` must match the scale the run was
/// analyzed with (1.0 single-core; MultiCoreResult::bandwidth_scale for
/// contended multi-core runs).
void AnalyzeTree(const core::MachineConfig& config, RegionTree* tree,
                 double bw_scale = 1.0);

}  // namespace uolap::obs

#endif  // UOLAP_OBS_ATTRIBUTION_H_
