#ifndef UOLAP_OBS_METRIC_NAMES_H_
#define UOLAP_OBS_METRIC_NAMES_H_
// Fixture: the central metric-name header. One good constant (spanning
// a line break, which the old line-regex lint missed), one grammar
// violation, one duplicate registration.

namespace uolap::obs::metric_names {

inline constexpr char kGoodTotal[] =
    "server.queries_total";
inline constexpr char kBadGrammar[] = "Server.BadName";
inline constexpr char kDupTotal[] = "server.queries_total";

}  // namespace uolap::obs::metric_names

#endif  // UOLAP_OBS_METRIC_NAMES_H_
