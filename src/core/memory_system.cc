#include "core/memory_system.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdlib>

#include "common/macros.h"

namespace uolap::core {

// The fast-path valid-entry bitmask is uint32_t and
// the full-table victim check compares against ~0u.
static_assert(kStreamTableEntries == 32,
              "stream fast-path masks assume a 32-entry detector table");

namespace {

uint64_t Log2Exact(uint64_t x) {
  UOLAP_CHECK_MSG(x != 0 && (x & (x - 1)) == 0, "expected a power of two");
  uint64_t shift = 0;
  while ((1ull << shift) != x) ++shift;
  return shift;
}

// Process-wide reference-path default: -1 = unresolved (consult the
// UOLAP_REFERENCE_PATHS environment variable once), else 0/1.
std::atomic<int> g_reference_default{-1};

bool ResolveReferenceDefault() {
  int v = g_reference_default.load(std::memory_order_relaxed);
  if (v < 0) {
    const char* env = std::getenv("UOLAP_REFERENCE_PATHS");
    v = (env != nullptr && env[0] != '\0' && env[0] != '0') ? 1 : 0;
    g_reference_default.store(v, std::memory_order_relaxed);
  }
  return v != 0;
}

}  // namespace

void MemorySystem::SetReferencePathsDefault(bool on) {
  g_reference_default.store(on ? 1 : 0, std::memory_order_relaxed);
}

MemorySystem::MemorySystem(const MachineConfig& config)
    : config_(config),
      l1i_(config.l1i.num_sets(), config.l1i.associativity),
      l1d_(config.l1d.num_sets(), config.l1d.associativity),
      l2_(config.l2.num_sets(), config.l2.associativity),
      l3_(config.l3.num_sets(), config.l3.associativity),
      dtlb_(config.dtlb_entries / config.dtlb_ways, config.dtlb_ways),
      stlb_(config.stlb_entries / config.stlb_ways, config.stlb_ways),
      reference_paths_(ResolveReferenceDefault()),
      page_shift_(Log2Exact(config.page_bytes)) {
  UOLAP_CHECK(page_shift_ > kLineShift);
  ResetFastPathState();
  // The seq-access residuals divide by compile-time MLP constants, which
  // IEEE forbids the compiler from strength-reducing itself — precompute
  // them (bit-exact: identical operands, identical quotient bits).
  const double dram_lat = config_.DramCycles();
  l2_seq_cov_cost_ =
      kCoveredUpperLevelResidual * config_.L2HitCycles() / kSeqResidualMlp;
  l2_seq_unc_cost_ = 1.0 * config_.L2HitCycles() / kSeqResidualMlp;
  l3_seq_cov_cost_ =
      kCoveredUpperLevelResidual * config_.L3HitCycles() / kSeqResidualMlp;
  l3_seq_unc_cost_ = 1.0 * config_.L3HitCycles() / kSeqResidualMlp;
  dram_l1s_cost_ = (1.0 - kL1StreamerHideFraction) * dram_lat / kSeqResidualMlp;
  dram_nl_cost_ = (1.0 - kNextLineHideFraction) * dram_lat / kSeqNoPfMlp;
  dram_unc_cost_ = dram_lat / kSeqNoPfMlp;
  stream_startup_cost_ = dram_lat / kStreamStartupMlp;
  RecomputeMlpCosts();
}

void MemorySystem::RecomputeMlpCosts() {
  stlb_cost_ = config_.stlb_hit_cycles / mlp_hint_;
  page_walk_cost_ = config_.page_walk_cycles / mlp_hint_;
  chase_cost_ = kL1ChaseCycles / mlp_hint_;
  l2_rand_cost_ = config_.L2HitCycles() / mlp_hint_;
  l3_rand_cost_ = config_.L3HitCycles() / mlp_hint_;
  dram_rand_cost_ = config_.DramCycles() / mlp_hint_;
}

void MemorySystem::ResetFastPathState() {
  stream_index_.Clear();
  stream_valid_mask_ = 0;
  lru_prev_.fill(-1);
  lru_next_.fill(-1);
  lru_head_ = -1;
  lru_tail_ = -1;
  stream_index_stale_ = false;
  memo_page_ = kNoPage;
  memo_dtlb_slot_ = 0;
  last_level_ = 0;
  fast_stats_ = FastPathStats{};
}

void MemorySystem::Reset() {
  l1i_.Clear();
  l1d_.Clear();
  l2_.Clear();
  l3_.Clear();
  dtlb_.Clear();
  stlb_.Clear();
  stream_next_fwd_.fill(0);
  stream_next_bwd_.fill(0);
  stream_ts_.fill(0);
  stream_run_.fill(0);
  stream_dir_.fill(0);
  stream_valid_.fill(0);
  stream_last_fill_dram_.fill(0);
  stream_clock_ = 0;
  matched_stream_ = -1;
  ResetFastPathState();
  fill_containment_violations_ = 0;
  counters_ = MemCounters{};
  mlp_hint_ = kMlpDefault;
  RecomputeMlpCosts();
}

void MemorySystem::KillStream(int index) {
  const size_t u = static_cast<size_t>(index);
  if (stream_valid_[u] && StreamEstablished(index) &&
      stream_last_fill_dram_[u] && config_.prefetchers.AnyStreamer()) {
    // The streamer had run ahead of the dying stream; those prefetched
    // lines are never consumed. This is the "unnecessary memory traffic"
    // of the paper's Fig. 21/24 discussion.
    const uint64_t waste = std::min<uint64_t>(
        stream_run_[u], static_cast<uint64_t>(kStreamerWasteLines));
    counters_.dram_prefetch_waste_bytes += waste * 64;
    ++counters_.streams_killed;
  }
  if (stream_valid_[u] && !stream_index_stale_) {
    stream_index_.Remove(stream_next_fwd_[u]);
    stream_valid_mask_ &= ~(1u << static_cast<uint32_t>(index));
    LruDetach(index);
  }
  stream_next_fwd_[u] = 0;
  stream_next_bwd_[u] = 0;
  stream_ts_[u] = 0;  // ts 0 == free slot; see ScanVictim
  stream_run_[u] = 0;
  stream_dir_[u] = 0;
  stream_valid_[u] = 0;
  stream_last_fill_dram_[u] = 0;
}

int MemorySystem::ScanStreams(uint64_t line) const {
  constexpr uint64_t kTol = static_cast<uint64_t>(kStreamSkipTolerance);
  // First-match scan in table order; the subtractions deliberately wrap:
  // line - next_fwd <= tol  <=>  next_fwd <= line <= next_fwd + tol.
  for (int i = 0; i < kStreamTableEntries; ++i) {
    const size_t u = static_cast<size_t>(i);
    if (!stream_valid_[u]) continue;
    const int8_t dir = stream_dir_[u];
    const bool re = line + 1 == stream_next_fwd_[u];
    const bool fwd = dir >= 0 && line - stream_next_fwd_[u] <= kTol;
    const bool bwd = dir <= 0 && stream_next_bwd_[u] - line <= kTol;
    if (re || fwd || bwd) return i;
  }
  return -1;
}

int MemorySystem::IndexStreams(uint64_t line) const {
  constexpr uint64_t kTol = static_cast<uint64_t>(kStreamSkipTolerance);
  // Every ScanStreams match condition places some valid entry's next_fwd
  // inside [line - tol, line + tol + 2]:
  //   re-access:  next_fwd == line + 1              (any direction)
  //   forward:    next_fwd in [line - tol, line]    and dir >= 0
  //   backward:   next_bwd in [line, line + tol]    and dir <= 0,
  //               i.e. next_fwd in [line + 2, line + 2 + tol]
  // If the filter proves no tracked prediction lies in that window, the
  // scan cannot match — the common case for random probes, answered in
  // one or two bit tests. Otherwise run the reference scan itself: a
  // stream is nearby, the scan exits at it, and first-match-in-table-
  // order semantics are inherited rather than reproduced. (Window keys
  // that wrap around 0 cannot be tracked — line numbers are < 2^58 — so
  // clamping the low end is exact.)
  const uint64_t lo = line >= kTol ? line - kTol : 0;
  if (!stream_index_.MaybeNear(lo, line + kTol + 2)) return -1;
  return ScanStreams(line);
}

int MemorySystem::ScanVictim() const {
  // Minimum-stamp scan with first-wins ties: free slots carry stamp 0
  // (the clock starts at 1), so this prefers the first invalid slot when
  // one exists and the true LRU stream otherwise.
  int victim = 0;
  uint64_t victim_ts = stream_ts_[0];
  for (int i = 1; i < kStreamTableEntries; ++i) {
    if (stream_ts_[static_cast<size_t>(i)] < victim_ts) {
      victim = i;
      victim_ts = stream_ts_[static_cast<size_t>(i)];
    }
  }
  return victim;
}

bool MemorySystem::UpdateStreams(uint64_t line, bool* is_reaccess) {
  *is_reaccess = false;
  constexpr uint64_t kTol = static_cast<uint64_t>(kStreamSkipTolerance);
  int matched;
  if (UOLAP_UNLIKELY(reference_paths_ || stream_index_stale_)) {
    matched = ScanStreams(line);
  } else {
    matched = IndexStreams(line);
    UOLAP_DCHECK(matched == ScanStreams(line));
  }

  if (matched >= 0) {
    const size_t u = static_cast<size_t>(matched);
    if (line + 1 == stream_next_fwd_[u]) {
      // Re-access of the stream's current line (e.g. several elements of
      // the same cache line arriving at line granularity, or a hot
      // aggregation line being hammered). Not an advance.
      *is_reaccess = true;
    } else {
      // Hardware streamers track both ascending and descending sequences;
      // the direction is locked in by the second matching access. Small
      // skips are tolerated; skipped lines were prefetched but never
      // consumed (wasted bandwidth — the paper's "most confusing"
      // mid-selectivity traffic).
      const bool fwd_match =
          stream_dir_[u] >= 0 && line - stream_next_fwd_[u] <= kTol;
      const uint64_t skipped =
          fwd_match ? line - stream_next_fwd_[u] : stream_next_bwd_[u] - line;
      if (skipped > 0 && StreamEstablished(matched) &&
          stream_last_fill_dram_[u] && config_.prefetchers.AnyStreamer()) {
        counters_.dram_prefetch_waste_bytes += skipped * 64;
      }
      if (!stream_index_stale_) {
        stream_index_.Move(stream_next_fwd_[u], line + 1);
      }
      stream_dir_[u] = fwd_match ? 1 : -1;
      stream_next_fwd_[u] = line + 1;
      stream_next_bwd_[u] = line - 1;
      const bool was_established = StreamEstablished(matched);
      ++stream_run_[u];
      if (!was_established && StreamEstablished(matched)) {
        ++counters_.streams_established;
        newly_established_ = true;
      }
    }
    TouchStream(matched);
    matched_stream_ = matched;
    return StreamEstablished(matched);
  }

  // No stream matched: allocate a fresh detector entry, preferring an
  // invalid slot over evicting a live stream. The fast path reads the
  // first free slot off the valid-entry bitmask, or the LRU list head
  // when the table is full — identical to ScanVictim (free slots are
  // ts 0 / first-wins; valid stamps are distinct, so list order == stamp
  // order).
  int victim;
  if (UOLAP_UNLIKELY(reference_paths_ || stream_index_stale_)) {
    victim = ScanVictim();
  } else {
    victim = stream_valid_mask_ != ~0u
                 ? std::countr_zero(~stream_valid_mask_)
                 : static_cast<int>(lru_head_);
    UOLAP_DCHECK(victim == ScanVictim());
  }
  KillStream(victim);
  const size_t v = static_cast<size_t>(victim);
  stream_valid_[v] = 1;
  stream_next_fwd_[v] = line + 1;
  stream_next_bwd_[v] = line - 1;
  stream_dir_[v] = 0;
  stream_run_[v] = 1;
  stream_last_fill_dram_[v] = 0;
  if (!stream_index_stale_) {
    stream_index_.Insert(line + 1);
    stream_valid_mask_ |= 1u << static_cast<uint32_t>(victim);
    LruAppend(victim);
  }
  matched_stream_ = victim;
  TouchStream(matched_stream_);
  return false;
}

int MemorySystem::WalkData(uint64_t line, bool is_store) {
  if (l1d_.Access(line, is_store)) return 1;
  if (l2_.Access(line, /*is_store=*/false)) {
    FillUpperLevels(line, is_store, /*from_level=*/2);
    return 2;
  }
  if (l3_.Access(line, /*is_store=*/false)) {
    FillUpperLevels(line, is_store, /*from_level=*/3);
    return 3;
  }
  FillUpperLevels(line, is_store, /*from_level=*/4);
  return 4;
}

void MemorySystem::FillUpperLevels(uint64_t line, bool is_store,
                                   int from_level) {
  // Fill order is outside-in so that evictions cascade naturally.
  // Every fill below is for a key just proven absent — a failed Access on
  // that level, or a failed MarkDirty in a writeback chain — so the
  // residency re-check inside Insert is skipped via InsertAbsent.
  if (from_level >= 4) {
    CacheAccessResult ev3 = l3_.InsertAbsent(line, /*dirty=*/false);
    if (ev3.evicted && ev3.evicted_dirty) {
      counters_.dram_writeback_bytes += 64;
    }
  }
  if (from_level >= 3) {
    CacheAccessResult ev2 = l2_.InsertAbsent(line, /*dirty=*/false);
    if (ev2.evicted && ev2.evicted_dirty) {
      if (!l3_.MarkDirty(ev2.evicted_key)) {
        CacheAccessResult ev3 =
            l3_.InsertAbsent(ev2.evicted_key, /*dirty=*/true);
        if (ev3.evicted && ev3.evicted_dirty) {
          counters_.dram_writeback_bytes += 64;
        }
      }
    }
  }
  CacheAccessResult ev1 = l1d_.InsertAbsent(line, /*dirty=*/is_store);
  if (ev1.evicted && ev1.evicted_dirty) {
    if (!l2_.MarkDirty(ev1.evicted_key)) {
      CacheAccessResult ev2 = l2_.InsertAbsent(ev1.evicted_key, /*dirty=*/true);
      if (ev2.evicted && ev2.evicted_dirty) {
        if (!l3_.MarkDirty(ev2.evicted_key)) {
          CacheAccessResult ev3 =
              l3_.InsertAbsent(ev2.evicted_key, /*dirty=*/true);
          if (ev3.evicted && ev3.evicted_dirty) {
            counters_.dram_writeback_bytes += 64;
          }
        }
      }
    }
  }
}

void MemorySystem::AccessDataLine(uint64_t line, bool is_store) {
  ++counters_.data_accesses;

  // --- address translation ---
  // The page memo caches the DTLB way of the immediately-previous access.
  // It is consulted only for the very next access, so a memo hit means
  // the previous translation was a same-page hit or fill — nothing can
  // have moved or evicted that way in between (same-page translations
  // never insert, different pages replace the memo first). Replaying the
  // hit via TouchHit is therefore bit-identical to the reference lookup,
  // LRU stamps included.
  const uint64_t page = line >> (page_shift_ - kLineShift);
  if (!reference_paths_ && page == memo_page_) {
    ++counters_.dtlb_hits;
    dtlb_.TouchHit(memo_dtlb_slot_);
    ++fast_stats_.memo_hits;
  } else {
    const int64_t hit_slot = dtlb_.AccessSlot(page, /*is_store=*/false);
    if (hit_slot >= 0) {
      ++counters_.dtlb_hits;
      memo_page_ = page;
      memo_dtlb_slot_ = static_cast<uint64_t>(hit_slot);
    } else if (stlb_.Access(page, /*is_store=*/false)) {
      ++counters_.stlb_hits;
      counters_.tlb_cycles += stlb_cost_;
      const CacheAccessResult fill = dtlb_.InsertAbsent(page, /*dirty=*/false);
      memo_page_ = page;
      memo_dtlb_slot_ = fill.slot;
    } else {
      ++counters_.page_walks;
      counters_.tlb_cycles += page_walk_cost_;
      stlb_.InsertAbsent(page, /*dirty=*/false);
      const CacheAccessResult fill = dtlb_.InsertAbsent(page, /*dirty=*/false);
      memo_page_ = page;
      memo_dtlb_slot_ = fill.slot;
    }
  }

  // --- stream detection (prefetcher training happens on the demand
  //     stream, before the cache walk) ---
  newly_established_ = false;
  bool is_reaccess = false;
  const bool is_seq = UpdateStreams(line, &is_reaccess);

  // --- hierarchy walk ---
  const int level = WalkData(line, is_store);
  if (UOLAP_UNLIKELY(validate_fills_) && level > 1) ValidateFill(line, level);
  last_level_ = level;
  if (matched_stream_ >= 0) {
    stream_last_fill_dram_[static_cast<size_t>(matched_stream_)] =
        (level == 4) ? 1 : 0;
  }

  // --- access costing --- (all quotients precomputed; see
  //     RecomputeMlpCosts for why that is bit-exact)
  const PrefetcherConfig& pf = config_.prefetchers;
  switch (level) {
    case 1:
      ++counters_.l1d_hits;
      if (!is_seq && !is_reaccess && !is_store) {
        // Random-access L1 hits model dependent pointer chases (hash
        // bucket -> entry). VTune attributes these to core-bound
        // (Execution), not memory-bound.
        counters_.exec_chase_cycles += chase_cost_;
      }
      break;
    case 2:
      ++counters_.l2_hits;
      if (is_seq) {
        ++counters_.l2_hits_seq;
        const bool covered = pf.l1_streamer || pf.l1_next_line;
        counters_.seq_residual_cycles +=
            covered ? l2_seq_cov_cost_ : l2_seq_unc_cost_;
      } else {
        ++counters_.l2_hits_rand;
        counters_.rand_dcache_cycles += l2_rand_cost_;
      }
      break;
    case 3:
      ++counters_.l3_hits;
      if (is_seq) {
        ++counters_.l3_hits_seq;
        const bool covered = pf.l2_streamer || pf.l2_next_line || pf.l1_streamer;
        counters_.seq_residual_cycles +=
            covered ? l3_seq_cov_cost_ : l3_seq_unc_cost_;
      } else {
        ++counters_.l3_hits_rand;
        counters_.rand_dcache_cycles += l3_rand_cost_;
      }
      break;
    case 4:
      ++counters_.dram_lines;
      if (is_seq) {
        counters_.dram_demand_bytes_seq += 64;
        if (pf.l2_streamer) {
          // Fully service-model costed (bandwidth/timeliness fixed point
          // in the Top-Down model).
          ++counters_.dram_seq_l2_streamer;
        } else if (pf.l1_streamer) {
          ++counters_.dram_seq_l1_streamer;
          counters_.seq_residual_cycles += dram_l1s_cost_;
        } else if (pf.AnyNextLine()) {
          ++counters_.dram_seq_next_line;
          counters_.seq_residual_cycles += dram_nl_cost_;
        } else {
          ++counters_.dram_seq_uncovered;
          counters_.seq_residual_cycles += dram_unc_cost_;
        }
      } else {
        ++counters_.dram_rand;
        counters_.dram_demand_bytes_rand += 64;
        counters_.rand_dcache_cycles += dram_rand_cost_;
      }
      break;
    default:
      UOLAP_CHECK_MSG(false, "impossible service level");
  }

  if (newly_established_ && level == 4) {
    // A fresh stream pays (mostly unoverlapped) DRAM latency until the
    // streamer catches up.
    counters_.stream_startup_cycles += stream_startup_cost_;
  }
}

uint64_t MemorySystem::AccessDataRunResidentSlow(uint64_t first_line,
                                                 uint64_t max_lines,
                                                 bool is_store) {
  // Eligibility: the per-line path for each serviced line must provably
  // take one exact shape — memo-hit translation, first-match advance of
  // stream `m` with no skip, L1 hit with established-stream costing (no
  // cycle terms). Every gate below guards one step of that proof (the
  // inline front already ruled out reference mode, a stale index, a
  // non-L1 previous access, and no matched stream).
  const int m = matched_stream_;
  const size_t u = static_cast<size_t>(m);
  if (!stream_valid_[u] || stream_dir_[u] != 1 || !StreamEstablished(m)) {
    return 0;
  }
  if (stream_next_fwd_[u] != first_line) return 0;
  const uint64_t line_shift = page_shift_ - kLineShift;
  if ((first_line >> line_shift) != memo_page_) return 0;
  // Clamp to the memo page so every translation is a memo hit.
  const uint64_t lines_per_page = 1ull << line_shift;
  const uint64_t page_left =
      lines_per_page - (first_line & (lines_per_page - 1));
  const uint64_t n = std::min(max_lines, page_left);
  if (n == 0) return 0;
  // A lower-index valid entry whose prediction window overlaps any line
  // of the run would steal the per-line first-match; refuse the run if
  // one exists (conservative: direction is not even consulted).
  constexpr uint64_t kTol = static_cast<uint64_t>(kStreamSkipTolerance);
  const uint64_t window_lo = first_line - kTol;       // wrapping is fine
  const uint64_t window_span = (n - 1) + 2 * kTol + 2;  // .. last + tol + 2
  for (int j = 0; j < m; ++j) {
    if (!stream_valid_[static_cast<size_t>(j)]) continue;
    if (stream_next_fwd_[static_cast<size_t>(j)] - window_lo <= window_span) {
      return 0;
    }
  }
  // Service the L1-resident prefix. A hit is Access()'s exact hit path; a
  // miss touches nothing and ends the run — the caller's per-line
  // fallback then records that miss once, exactly as the reference would.
  uint64_t c = 0;
  while (c < n && l1d_.AccessIfPresent(first_line + c, is_store)) ++c;
  if (c == 0) return 0;
  // Closed-form bulk update, equal to c iterations of the per-line path:
  // only final states are observable, and every per-line increment below
  // telescopes (counters, LRU clocks, stream stamp/run/prediction).
  counters_.data_accesses += c;
  counters_.l1d_hits += c;
  counters_.dtlb_hits += c;
  dtlb_.TouchHitN(memo_dtlb_slot_, c);
  fast_stats_.memo_hits += c;
  stream_index_.Move(stream_next_fwd_[u], first_line + c);
  stream_next_fwd_[u] = first_line + c;
  stream_next_bwd_[u] = first_line + c - 2;
  stream_run_[u] += static_cast<uint32_t>(c);
  stream_clock_ += c;
  stream_ts_[u] = stream_clock_;
  if (lru_tail_ != m) {
    LruDetach(m);
    LruAppend(m);
  }
  stream_last_fill_dram_[u] = 0;
  matched_stream_ = m;
  newly_established_ = false;
  last_level_ = 1;
  ++fast_stats_.lane_runs;
  fast_stats_.lane_lines += c;
  return c;
}

void MemorySystem::ValidateFill(uint64_t line, int from_level) {
  // After servicing a miss from `from_level`, FillUpperLevels must have
  // left the line resident in L1D and, when it came from L3/DRAM, in L2;
  // when it came from DRAM, in L3 as well (fill-inclusive policy —
  // evictions may break containment later, fills never may). The freshly
  // filled line carries the maximum LRU stamp in its set, so the cascading
  // writeback inserts of the same fill can only displace it from a
  // single-way set; skip those (degenerate test geometries).
  bool ok = l1d_.Contains(line);
  if (from_level >= 3 && l2_.ways() >= 2) ok = ok && l2_.Contains(line);
  if (from_level >= 4 && l3_.ways() >= 2) ok = ok && l3_.Contains(line);
  if (!ok) ++fill_containment_violations_;
}

int MemorySystem::WalkCode(uint64_t line) {
  if (l1i_.Access(line, /*is_store=*/false)) return 1;
  if (l2_.Access(line, /*is_store=*/false)) {
    l1i_.InsertAbsent(line, /*dirty=*/false);
    return 2;
  }
  if (l3_.Access(line, /*is_store=*/false)) {
    l2_.InsertAbsent(line, /*dirty=*/false);
    l1i_.InsertAbsent(line, /*dirty=*/false);
    return 3;
  }
  l3_.InsertAbsent(line, /*dirty=*/false);
  l2_.InsertAbsent(line, /*dirty=*/false);
  l1i_.InsertAbsent(line, /*dirty=*/false);
  return 4;
}

void MemorySystem::FetchCode(uint64_t line) {
  ++counters_.code_fetches;
  switch (WalkCode(line)) {
    case 1:
      ++counters_.l1i_hits;
      break;
    case 2:
      ++counters_.l1i_l2_hits;
      break;
    case 3:
      ++counters_.l1i_l3_hits;
      break;
    case 4:
      ++counters_.l1i_dram;
      counters_.dram_demand_bytes_rand += 64;
      break;
  }
}

void MemorySystem::Finalize() {
  for (int i = 0; i < kStreamTableEntries; ++i) {
    if (stream_valid_[static_cast<size_t>(i)]) KillStream(i);
  }
}

}  // namespace uolap::core
