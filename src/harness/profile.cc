#include "harness/profile.h"

namespace uolap::harness {

using uolap::TablePrinter;

std::vector<std::string> CpuCyclesHeader(const std::string& key_name) {
  return {key_name, "Stall", "Retiring"};
}

std::vector<std::string> CpuCyclesRow(const std::string& key,
                                      const core::CycleBreakdown& b) {
  return {key, TablePrinter::Pct(b.StallRatio()),
          TablePrinter::Pct(b.Frac(b.retiring))};
}

std::vector<std::string> StallHeader(const std::string& key_name) {
  return {key_name, "Execution", "Dcache", "Decoding", "Icache",
          "Branch misp."};
}

std::vector<std::string> StallRow(const std::string& key,
                                  const core::CycleBreakdown& b) {
  return {key,
          TablePrinter::Pct(b.StallFrac(b.execution)),
          TablePrinter::Pct(b.StallFrac(b.dcache)),
          TablePrinter::Pct(b.StallFrac(b.decoding)),
          TablePrinter::Pct(b.StallFrac(b.icache)),
          TablePrinter::Pct(b.StallFrac(b.branch_misp))};
}

std::vector<std::string> TimeHeader(const std::string& key_name) {
  return {key_name,  "Total ms", "Retiring ms", "Branch ms",
          "Icache ms", "Decoding ms", "Dcache ms", "Execution ms"};
}

namespace {
double ToMs(double cycles, const core::ProfileResult& r) {
  return r.total_cycles > 0 ? r.time_ms * cycles / r.total_cycles : 0.0;
}
}  // namespace

std::vector<std::string> TimeRow(const std::string& key,
                                 const core::ProfileResult& r) {
  const auto& b = r.cycles;
  return {key,
          TablePrinter::Fmt(r.time_ms, 1),
          TablePrinter::Fmt(ToMs(b.retiring, r), 1),
          TablePrinter::Fmt(ToMs(b.branch_misp, r), 1),
          TablePrinter::Fmt(ToMs(b.icache, r), 1),
          TablePrinter::Fmt(ToMs(b.decoding, r), 1),
          TablePrinter::Fmt(ToMs(b.dcache, r), 1),
          TablePrinter::Fmt(ToMs(b.execution, r), 1)};
}

TablePrinter RegionTable(const std::string& title,
                         const obs::RegionTree& tree) {
  TablePrinter t(title);
  t.SetHeader({"region", "visits", "Mcycles", "% run", "IPC", "Retiring",
               "Branch", "Icache", "Decoding", "Dcache", "Execution"});
  const double run_cycles = tree.root().incl_cycles.Total();
  for (const obs::RegionNode& n : tree.nodes) {
    const core::CycleBreakdown& b = n.excl_cycles;
    const double cycles = b.Total();
    const double instr =
        static_cast<double>(n.exclusive.mix.TotalInstructions());
    t.AddRow({std::string(static_cast<size_t>(n.depth) * 2, ' ') + n.name,
              std::to_string(n.visits),
              TablePrinter::Fmt(cycles / 1e6, 2),
              TablePrinter::Pct(run_cycles > 0 ? cycles / run_cycles : 0.0),
              TablePrinter::Fmt(cycles > 0 ? instr / cycles : 0.0, 2),
              TablePrinter::Pct(b.Frac(b.retiring)),
              TablePrinter::Pct(b.Frac(b.branch_misp)),
              TablePrinter::Pct(b.Frac(b.icache)),
              TablePrinter::Pct(b.Frac(b.decoding)),
              TablePrinter::Pct(b.Frac(b.dcache)),
              TablePrinter::Pct(b.Frac(b.execution))});
  }
  return t;
}

std::vector<std::string> NormTimeRow(const std::string& key,
                                     const core::ProfileResult& r,
                                     double base_cycles) {
  const auto& b = r.cycles;
  auto norm = [&](double cycles) {
    return TablePrinter::Fmt(base_cycles > 0 ? cycles / base_cycles : 0.0, 2);
  };
  return {key,
          norm(r.total_cycles),
          norm(b.retiring),
          norm(b.branch_misp),
          norm(b.icache),
          norm(b.decoding),
          norm(b.dcache),
          norm(b.execution)};
}

}  // namespace uolap::harness
