#ifndef UOLAP_COMMON_FLAGS_H_
#define UOLAP_COMMON_FLAGS_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace uolap {

/// Minimal command-line flag parser shared by the bench and example
/// binaries. Accepts `--name=value` and bare `--name` (boolean true).
/// Anything that does not start with `--` is collected as a positional
/// argument.
///
/// Usage:
///   FlagSet flags;
///   UOLAP_CHECK(flags.Parse(argc, argv).ok());
///   double sf = flags.GetDouble("sf", 1.0);
///   bool quick = flags.GetBool("quick", false);
class FlagSet {
 public:
  /// Parses argv. Returns InvalidArgument on malformed input (e.g. an
  /// empty flag name).
  Status Parse(int argc, char** argv);

  /// True if the flag was present on the command line.
  bool Has(const std::string& name) const;

  std::string GetString(const std::string& name,
                        const std::string& default_value) const;
  double GetDouble(const std::string& name, double default_value) const;
  int64_t GetInt(const std::string& name, int64_t default_value) const;
  /// Bare `--name` and the values "1", "true", "yes", "on" are true.
  bool GetBool(const std::string& name, bool default_value) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace uolap

#endif  // UOLAP_COMMON_FLAGS_H_
