#ifndef UOLAP_CORE_BRANCH_PREDICTOR_H_
#define UOLAP_CORE_BRANCH_PREDICTOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace uolap::core {

/// A gshare conditional-branch predictor: a table of 2-bit saturating
/// counters indexed by (branch site id XOR global history).
///
/// Engines feed it only their *data-dependent* branches (predicate tests,
/// hash-chain continuation checks); perfectly predictable loop back-edges
/// are accounted as plain branch instructions in the instruction mix. This
/// is exactly where the paper's selection analysis lives: a Bernoulli(p)
/// predicate stream mispredicts most around p = 50% and almost never at the
/// combined 0.1% selectivity a compiled engine evaluates (Section 4).
class BranchPredictor {
 public:
  /// `table_bits` counters of 2 bits each; `history_bits` of global history.
  explicit BranchPredictor(uint32_t table_bits = 16,
                           uint32_t history_bits = 12);

  /// Records the outcome of one dynamic branch at static site `site_id`.
  /// Returns true if the predictor mispredicted it.
  bool Record(uint32_t site_id, bool taken) {
    const uint32_t index =
        (site_id ^ (history_ << history_shift_)) & table_mask_;
    uint8_t& counter = table_[index];
    const bool predicted_taken = counter >= 2;
    const bool mispredicted = predicted_taken != taken;
    if (taken) {
      if (counter < 3) ++counter;
    } else {
      if (counter > 0) --counter;
    }
    history_ = ((history_ << 1) | static_cast<uint32_t>(taken)) & history_mask_;
    ++branches_;
    if (mispredicted) ++mispredicts_;
    return mispredicted;
  }

  uint64_t branches() const { return branches_; }
  uint64_t mispredicts() const { return mispredicts_; }

  // --- introspection (audit layer / tests) ----------------------------
  size_t table_size() const { return table_.size(); }
  uint8_t counter_at(size_t i) const { return table_[i]; }
  uint32_t history() const { return history_; }
  uint32_t history_mask() const { return history_mask_; }

  /// Test-only corruption hook (audit failure-path tests): writes a raw
  /// value into one 2-bit counter slot, legal or not.
  void TestOnlySetCounter(size_t i, uint8_t value) { table_[i] = value; }
  double MispredictRate() const {
    return branches_ == 0
               ? 0.0
               : static_cast<double>(mispredicts_) / static_cast<double>(branches_);
  }

  void Reset();

 private:
  std::vector<uint8_t> table_;
  uint32_t table_mask_;
  uint32_t history_mask_;
  uint32_t history_shift_;
  uint32_t history_ = 0;
  uint64_t branches_ = 0;
  uint64_t mispredicts_ = 0;
};

}  // namespace uolap::core

#endif  // UOLAP_CORE_BRANCH_PREDICTOR_H_
