// Typer's fused scan loops: the projection and selection micro-benchmarks.

#include <algorithm>
#include <vector>

#include "common/macros.h"
#include "core/calibration.h"
#include "engines/typer/typer_engine.h"
#include "storage/column_view.h"

namespace uolap::typer {

using core::InstrMix;
using engine::PartitionRange;
using engine::RowRange;
using engine::Workers;
using storage::ColumnView;
using tpch::Money;

namespace {

// Per-tuple loop-control overhead of a 4x-unrolled compiled loop:
// 0.25 back-edge branches and ~0.5 ALU (compare + advance). Accounted in
// batches of 4 tuples to keep integer arithmetic exact.
constexpr uint64_t kUnroll = 4;

// Unconditionally-read columns are charged per block of this many elements
// (ColumnView::Touch), then read raw in the compute loop. Conditional
// reads keep per-element Get(): batching them would change the load count.
constexpr size_t kBlock = 1024;

}  // namespace

Money TyperEngine::Projection(Workers& w, int degree) const {
  UOLAP_CHECK(degree >= 1 && degree <= 4);
  const auto& l = db_.lineitem;
  const size_t n = l.size();

  std::vector<Money> partial(w.count(), 0);
  w.ForEach([&](size_t t) {
    core::Core& core = *w.cores[t];
    core::ScopedRegion scan_region(core, "project");
    const RowRange r = PartitionRange(n, t, w.count());
    core.SetCodeRegion({"typer/projection", 1024});
    core.SetMlpHint(core::kMlpDefault);

    ColumnView<Money> ep(l.extendedprice, &core);
    ColumnView<int64_t> disc(l.discount, &core);
    ColumnView<int64_t> tax(l.tax, &core);
    ColumnView<int64_t> qty(l.quantity, &core);

    Money acc = 0;
    for (size_t b = r.begin; b < r.end; b += kBlock) {
      const size_t e = std::min(r.end, b + kBlock);
      ep.Touch(b, e - b);
      if (degree >= 2) disc.Touch(b, e - b);
      if (degree >= 3) tax.Touch(b, e - b);
      if (degree >= 4) qty.Touch(b, e - b);
      for (size_t i = b; i < e; ++i) {
        Money v = ep.GetRaw(i);
        if (degree >= 2) v += disc.GetRaw(i);
        if (degree >= 3) v += tax.GetRaw(i);
        if (degree >= 4) v += qty.GetRaw(i);
        acc += v;
      }
    }
    partial[t] = acc;

    // Per tuple: `degree` adds folded as a tree (ALU) feeding one serial
    // accumulator add (1-cycle chain), plus unrolled loop control.
    InstrMix per4;
    per4.alu = static_cast<uint64_t>(degree) * kUnroll + 2;
    per4.branch = 1;
    per4.chain_cycles = kUnroll;
    core.RetireN(per4, r.size() / kUnroll);
    InstrMix tail;
    tail.alu = static_cast<uint64_t>(degree) + 1;
    tail.branch = 1;
    tail.chain_cycles = 1;
    core.RetireN(tail, r.size() % kUnroll);
  });

  Money total = 0;
  for (Money p : partial) total += p;
  return total;
}

Money TyperEngine::Selection(Workers& w,
                             const engine::SelectionParams& p) const {
  const auto& l = db_.lineitem;
  const size_t n = l.size();

  std::vector<Money> partial(w.count(), 0);
  w.ForEach([&](size_t t) {
    core::Core& core = *w.cores[t];
    core::ScopedRegion scan_region(core, "select");
    const RowRange r = PartitionRange(n, t, w.count());
    core.SetCodeRegion({p.predicated ? "typer/selection-predicated"
                                     : "typer/selection-branched",
                        1280});
    core.SetMlpHint(core::kMlpDefault);

    ColumnView<tpch::Date> ship(l.shipdate, &core);
    ColumnView<tpch::Date> commit(l.commitdate, &core);
    ColumnView<tpch::Date> receipt(l.receiptdate, &core);
    ColumnView<Money> ep(l.extendedprice, &core);
    ColumnView<int64_t> disc(l.discount, &core);
    ColumnView<int64_t> tax(l.tax, &core);
    ColumnView<int64_t> qty(l.quantity, &core);

    Money acc = 0;
    uint64_t passes = 0;
    if (!p.predicated) {
      // Branched, compiled: all three predicates evaluated with bitwise
      // `&` into ONE branch, so the predictor faces the combined
      // selectivity (s^3). The three date columns are read for every
      // tuple (batched); the projected columns only behind the branch.
      for (size_t b = r.begin; b < r.end; b += kBlock) {
        const size_t e = std::min(r.end, b + kBlock);
        ship.Touch(b, e - b);
        commit.Touch(b, e - b);
        receipt.Touch(b, e - b);
        for (size_t i = b; i < e; ++i) {
          const bool pass = (ship.GetRaw(i) < p.ship_cut) &
                            (commit.GetRaw(i) < p.commit_cut) &
                            (receipt.GetRaw(i) < p.receipt_cut);
          core.Branch(engine::branch_site::kSelectionCombined, pass);
          if (pass) {
            acc += ep.Get(i) + disc.Get(i) + tax.Get(i) + qty.Get(i);
            ++passes;
          }
        }
      }
      // Per tuple: 3 compares + 2 ands + loop control; per passing tuple:
      // 4 adds (tree) + serial accumulator add.
      InstrMix per_tuple;
      per_tuple.alu = 5 + 1;  // predicates + unrolled loop control share
      core.RetireN(per_tuple, r.size());
      InstrMix loop4;
      loop4.branch = 1;
      core.RetireN(loop4, r.size() / kUnroll);
      InstrMix per_pass;
      per_pass.alu = 4;
      per_pass.chain_cycles = 1;
      core.RetireN(per_pass, passes);
    } else {
      // Predicated, branch-free: the projection is computed for EVERY
      // tuple and multiplied by the 0/1 predicate mask (Section 7's
      // trade-off: more computation, no branches). All seven columns are
      // read unconditionally, so all seven batch.
      for (size_t b = r.begin; b < r.end; b += kBlock) {
        const size_t e = std::min(r.end, b + kBlock);
        ship.Touch(b, e - b);
        commit.Touch(b, e - b);
        receipt.Touch(b, e - b);
        ep.Touch(b, e - b);
        disc.Touch(b, e - b);
        tax.Touch(b, e - b);
        qty.Touch(b, e - b);
        for (size_t i = b; i < e; ++i) {
          const int64_t mask = static_cast<int64_t>(
              (ship.GetRaw(i) < p.ship_cut) &
              (commit.GetRaw(i) < p.commit_cut) &
              (receipt.GetRaw(i) < p.receipt_cut));
          acc += mask *
                 (ep.GetRaw(i) + disc.GetRaw(i) + tax.GetRaw(i) +
                  qty.GetRaw(i));
          passes += static_cast<uint64_t>(mask);
        }
      }
      InstrMix per_tuple;
      per_tuple.alu = 5 + 4 + 1 + 1;  // predicates + adds + mask counting
      per_tuple.mul = 1;              // mask multiply
      per_tuple.chain_cycles = 1;
      core.RetireN(per_tuple, r.size());
      InstrMix loop4;
      loop4.branch = 1;
      core.RetireN(loop4, r.size() / kUnroll);
    }
    partial[t] = acc;
  });

  Money total = 0;
  for (Money p : partial) total += p;
  return total;
}

}  // namespace uolap::typer
