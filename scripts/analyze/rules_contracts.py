"""Contract rule family (CON-*).

The simulation contracts the compiler cannot enforce (DESIGN.md §5d),
promoted from scripts/lint_contracts.py onto the token/structure model:

  * region discipline — engine/bench code uses core::ScopedRegion, never
    raw ``PushRegion``/``PopRegion``; and wherever raw calls are legal
    (core internals, obs), every function body pushes exactly as often
    as it pops, so an early return cannot leave the region stack torn.
  * metric names — every name constant in src/obs/metric_names.h obeys
    the grammar and is unique; publish call sites use the constants,
    never inline string literals.
  * test-only hooks — ``TestOnly*`` members are never *called* outside
    tests/, and a ``TestOnly``-prefixed symbol is never referenced from
    a src/ translation unit other than the one that declares it.
  * structure — include guards, own-header-first, no file-scope
    using-directives in headers, and the storage discipline (charge
    through the Core/ColumnView API, not raw ``memory()``).
"""

import os
import re

from engine import Rule
from cpptok import KIND_IDENT, KIND_STRING

# Engine-level code: operator implementations and drivers that must go
# through the sanctioned RAII/charging APIs.
ENGINE_DIRS = ("src/engines", "src/storage", "src/server", "bench",
               "examples")
_SRC_DIRS = ("src",)
_NO_TESTONLY_DIRS = ("src", "bench", "examples")

# --- CON-REGION-RAW -------------------------------------------------------

_RAW_REGION_RE = re.compile(r"\b(?:PushRegion|PopRegion)\s*\(")


def check_region_raw(ctx, rule, sf):
    if not sf.in_dirs(ENGINE_DIRS):
        return
    for lineno, line in enumerate(sf.model.code_lines, 1):
        if _RAW_REGION_RE.search(line):
            ctx.report(rule, sf, lineno,
                       "raw PushRegion/PopRegion call site; only "
                       "core::ScopedRegion keeps the push/pop stream "
                       "LIFO under early returns")


# --- CON-REGION-PAIR ------------------------------------------------------

# The RAII wrapper and the primitives themselves are the sanctioned
# unbalanced bodies (ctor pushes, dtor pops); everything else in src/
# must balance within one function body.
_PAIR_EXEMPT_FN = re.compile(r"^~?(?:ScopedRegion|PushRegion|PopRegion)$")


def _count_calls(toks, start, end, name):
    count = 0
    for k in range(start, min(end, len(toks) - 1)):
        t = toks[k]
        if t.kind == KIND_IDENT and t.text == name and \
                toks[k + 1].text == "(":
            count += 1
    return count


def check_region_pair(ctx, rule, sf):
    if not sf.in_dirs(_SRC_DIRS):
        return
    toks = sf.model.tokens
    for fn in sf.model.functions:
        if _PAIR_EXEMPT_FN.match(fn.name):
            continue
        pushes = _count_calls(toks, fn.body_start, fn.body_end,
                              "PushRegion")
        pops = _count_calls(toks, fn.body_start, fn.body_end,
                            "PopRegion")
        if pushes != pops:
            ctx.report(rule, sf, fn.line,
                       f"{fn.name}: {pushes} PushRegion vs {pops} "
                       "PopRegion in one body; an unbalanced region "
                       "stack silently skews every enclosing "
                       "attribution node")


# --- CON-METRIC-NAME ------------------------------------------------------

METRIC_HEADER = "src/obs/metric_names.h"
_METRIC_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)*$")
# Spans line breaks: `inline constexpr char kFoo[] =\n    "a.b";`
_METRIC_CONST_RE = re.compile(
    r"constexpr\s+char\s+(k\w+)\[\]\s*=\s*\"([^\"]*)\"")
_PUBLISH_METHODS = {"Count", "Observe", "SetGauge", "MaxGauge"}


def check_metric_names(ctx, rule, sf):
    if sf.relpath == METRIC_HEADER:
        seen = {}
        for m in _METRIC_CONST_RE.finditer(sf.source):
            lineno = sf.source.count("\n", 0, m.start()) + 1
            name = m.group(2)
            if not _METRIC_NAME_RE.match(name):
                ctx.report(rule, sf, lineno,
                           f'"{name}" violates the metric name grammar '
                           f"{_METRIC_NAME_RE.pattern}")
            if name in seen:
                ctx.report(rule, sf, lineno,
                           f'"{name}" already registered on line '
                           f"{seen[name]}")
            seen[name] = lineno
        return
    if not sf.in_dirs(_SRC_DIRS):
        return
    # Publish call with an inline string literal as the name argument
    # (token-based, so a literal on a continuation line still counts).
    toks = sf.model.tokens
    for k, t in enumerate(toks[:-2]):
        if t.kind != KIND_IDENT or t.text not in _PUBLISH_METHODS:
            continue
        prev = toks[k - 1].text if k > 0 else ""
        if prev not in (".", "->"):
            continue
        if toks[k + 1].text == "(" and toks[k + 2].kind == KIND_STRING:
            ctx.report(rule, sf, t.line,
                       "metric published with an inline string "
                       "literal; names must come from "
                       "obs/metric_names.h so the registry namespace "
                       "stays centrally auditable")


# --- CON-TESTONLY ---------------------------------------------------------

_TESTONLY_CALL_RE = re.compile(r"(?:\.|->)\s*TestOnly\w*\s*\(")


def check_testonly_call(ctx, rule, sf):
    if not sf.in_dirs(_NO_TESTONLY_DIRS):
        return
    for lineno, line in enumerate(sf.model.code_lines, 1):
        if _TESTONLY_CALL_RE.search(line):
            ctx.report(rule, sf, lineno,
                       "TestOnly* hook called outside tests/; these "
                       "bypass the invariants the normal mutation "
                       "paths maintain")


# --- CON-TESTONLY-REF (tree) ----------------------------------------------

def check_testonly_ref(ctx, rule):
    """A ``TestOnly``-prefixed symbol may appear in the header that
    declares it (and that header's own .cc); any other src/ file
    referencing the name is production code depending on a test hook."""
    declared_in = {}  # symbol -> set of headers mentioning it
    for relpath, sf in ctx.files.items():
        if not relpath.startswith("src/") or not relpath.endswith(".h"):
            continue
        for t in sf.model.tokens:
            if t.kind == KIND_IDENT and t.text.startswith("TestOnly"):
                declared_in.setdefault(t.text, set()).add(relpath)
    for relpath, sf in ctx.files.items():
        if not relpath.startswith("src/") or relpath.endswith(".h"):
            continue
        own_header = re.sub(r"\.(cc|cpp)$", ".h", relpath)
        for t in sf.model.tokens:
            if t.kind != KIND_IDENT or not t.text.startswith("TestOnly"):
                continue
            homes = declared_in.get(t.text, set())
            if own_header in homes:
                continue  # implementing its own declared hook
            ctx.report(rule, sf, t.line,
                       f"{t.text} referenced from {relpath}, but it is "
                       f"declared in {', '.join(sorted(homes)) or 'no header'};"
                       " test hooks must stay confined to their own TU "
                       "and tests/")


# --- CON-GUARD ------------------------------------------------------------

def _guard_name(relpath):
    p = relpath[4:] if relpath.startswith("src/") else relpath
    return "UOLAP_" + re.sub(r"[/.]", "_", p).upper() + "_"


def check_guard(ctx, rule, sf):
    if not sf.in_dirs(_SRC_DIRS) or not sf.is_header:
        return
    want = _guard_name(sf.relpath)
    for lineno, line in enumerate(sf.model.code_lines, 1):
        if line.startswith("#ifndef "):
            got = line.split()[1] if len(line.split()) > 1 else "<none>"
            if got != want:
                ctx.report(rule, sf, lineno,
                           f"include guard is {got}, want {want}")
            return
    ctx.report(rule, sf, 1, f"no include guard; want #ifndef {want}")


# --- CON-USING-NS ---------------------------------------------------------

_USING_NS_RE = re.compile(r"^\s*using\s+namespace\b")


def check_using_ns(ctx, rule, sf):
    if not sf.in_dirs(_SRC_DIRS) or not sf.is_header:
        return
    for lineno, line in enumerate(sf.model.code_lines, 1):
        if _USING_NS_RE.match(line):
            ctx.report(rule, sf, lineno,
                       "file-scope using-directive in a header leaks "
                       "into every includer")


# --- CON-INCLUDE-ORDER ----------------------------------------------------

def check_include_order(ctx, rule, sf):
    """foo.cc includes its own foo.h first — catches headers that
    silently depend on prior includes."""
    if not sf.relpath.endswith((".cc", ".cpp")):
        return
    own = re.sub(r"\.(cc|cpp)$", ".h", sf.relpath)
    own_inc = own[4:] if own.startswith("src/") else own
    if not os.path.exists(os.path.join(ctx.root, "src", own_inc)):
        return
    for inc in sf.model.includes:
        if inc.angled:
            continue
        if inc.path != own_inc:
            ctx.report(rule, sf, inc.line,
                       f'first project include must be "{own_inc}"')
        return


# --- CON-STORAGE ----------------------------------------------------------

_STORAGE_RE = re.compile(
    r"(?:\.|->)\s*memory\s*\(\s*\)|\bmutable_counters\s*\(")


def check_storage(ctx, rule, sf):
    if not sf.in_dirs(ENGINE_DIRS):
        return
    for lineno, line in enumerate(sf.model.code_lines, 1):
        if _STORAGE_RE.search(line):
            ctx.report(rule, sf, lineno,
                       "reaching into core.memory()/mutable_counters() "
                       "bypasses the instruction-mix accounting; charge "
                       "through the Core/ColumnView API")


# --- CON-STATUS-DISCARD ---------------------------------------------------

# The dispatch surface reports errors by value: engine::OlapEngine::Run
# and engine::EngineRegistry::Get return common::StatusOr.  A call whose
# entire statement is the call itself drops the error channel on the
# floor — the `;` right after the closing paren means nobody can branch
# on ok() or unwrap the value.  Expression uses (`acc += bal.Get(i)`,
# `eng.Run(spec, w).value()`) are fine: the result feeds something.
_STATUS_METHODS = {"Run", "Get"}
# Idents that consume the value even though they precede the chain.
_STATUS_CONSUMERS = {"return", "co_return", "co_await", "throw"}
_CHAIN_PUNCT = {".", "->", "::"}


def _match_open(toks, close_idx):
    close = toks[close_idx].text
    want = "(" if close == ")" else "["
    depth = 0
    for k in range(close_idx, -1, -1):
        t = toks[k].text
        if t == close:
            depth += 1
        elif t == want:
            depth -= 1
            if depth == 0:
                return k
    return -1


def _match_close(toks, open_idx):
    depth = 0
    for k in range(open_idx, len(toks)):
        t = toks[k].text
        if t == "(":
            depth += 1
        elif t == ")":
            depth -= 1
            if depth == 0:
                return k
    return -1


def _begins_statement(toks, p):
    """True when the receiver chain ending at toks[p] opens a statement,
    i.e. nothing to the left can absorb the call's return value."""
    while p >= 0:
        t = toks[p]
        if t.kind == KIND_IDENT:
            if t.text in _STATUS_CONSUMERS:
                return False
            p -= 1
            continue
        if t.text in _CHAIN_PUNCT:
            p -= 1
            continue
        if t.text in (")", "]"):
            opener = _match_open(toks, p)
            if opener < 1:
                return False
            if t.text == ")" and toks[opener - 1].kind != KIND_IDENT:
                # Grouping or cast paren, not a chained call: the value
                # is being fed into an expression (or explicitly
                # void-cast, which is a deliberate annotation).
                return False
            p = opener - 1
            continue
        return t.text in (";", "{", "}")
    return True


def check_status_discard(ctx, rule, sf):
    if not sf.in_dirs(ENGINE_DIRS):
        return
    toks = sf.model.tokens
    for k, t in enumerate(toks):
        if t.kind != KIND_IDENT or t.text not in _STATUS_METHODS:
            continue
        if k == 0 or toks[k - 1].text not in (".", "->"):
            continue
        if k + 1 >= len(toks) or toks[k + 1].text != "(":
            continue
        close = _match_close(toks, k + 1)
        if close < 0 or close + 1 >= len(toks):
            continue
        if toks[close + 1].text != ";":
            continue
        if not _begins_statement(toks, k - 2):
            continue
        ctx.report(rule, sf, t.line,
                   f"discarded Status from {t.text}() on the dispatch "
                   "surface; consume the StatusOr by branching on ok() "
                   "or unwrapping with value()")


# --- CON-IO-CHECKED -------------------------------------------------------

# The crash-consistency story (DESIGN.md §10) lives or dies on checked
# I/O: a discarded fwrite/fflush/fsync/rename result on the persistence
# surface turns a full disk or a failed atomic-rename into silent
# corruption that the CRC framing can no longer tell apart from a torn
# tail.  Statement-level, like CON-STATUS-DISCARD: a call whose entire
# statement is the call itself drops the result.  Expression uses
# (`== 0`, `if (!...)`, assignments) are fine, `(void)` casts are a
# deliberate annotation, and flushing the stdout/stderr diagnostics
# streams is exempt — those never carry durable state.
_IO_SURFACE_STEMS = ("journal", "checkpoint", "file_io", "profile_export")
_IO_CALLS = {"WriteTextFile", "WriteFileAtomic", "AppendRecord",
             "fwrite", "fflush", "fsync", "rename", "ftruncate"}
_IO_DIAG_STREAMS = {"stdout", "stderr"}


def _on_io_surface(sf):
    if not sf.in_dirs(_SRC_DIRS) or not sf.relpath.endswith((".cc", ".cpp")):
        return False
    base = os.path.basename(sf.relpath)
    return any(stem in base for stem in _IO_SURFACE_STEMS)


def _io_begins_statement(toks, p):
    """Walks left over ``ns::`` / ``obj.`` / ``obj->`` qualifier chains;
    the receiver must open a statement for the result to be dropped.
    Unlike _begins_statement this refuses a bare identifier on the left,
    so a declaration (``Status WriteTextFile(...);``) never matches."""
    while p >= 0:
        t = toks[p]
        if t.text in ("::", ".", "->"):
            p -= 1
            if p >= 0 and toks[p].kind == KIND_IDENT:
                p -= 1
                continue
            return False
        return t.text in (";", "{", "}")
    return True


def check_io_checked(ctx, rule, sf):
    if not _on_io_surface(sf):
        return
    toks = sf.model.tokens
    for k, t in enumerate(toks):
        if t.kind != KIND_IDENT or t.text not in _IO_CALLS:
            continue
        if k + 1 >= len(toks) or toks[k + 1].text != "(":
            continue
        close = _match_close(toks, k + 1)
        if close < 0 or close + 1 >= len(toks):
            continue
        if toks[close + 1].text != ";":
            continue
        if t.text == "fflush" and k + 2 < len(toks) and \
                toks[k + 2].text in _IO_DIAG_STREAMS:
            continue
        if not _io_begins_statement(toks, k - 1):
            continue
        ctx.report(rule, sf, t.line,
                   f"discarded {t.text}() result on the persistence "
                   "surface; a failed write/flush/rename must surface as "
                   "a Status, not as silent corruption at recovery time")


RULES = [
    Rule("CON-REGION-RAW", "error", "contracts",
         "engine/bench code must use core::ScopedRegion, not raw "
         "Push/PopRegion", check_region_raw),
    Rule("CON-REGION-PAIR", "error", "contracts",
         "PushRegion/PopRegion balance within every function body",
         check_region_pair),
    Rule("CON-METRIC-NAME", "error", "contracts",
         "metric name grammar, uniqueness, and central registration",
         check_metric_names),
    Rule("CON-TESTONLY", "error", "contracts",
         "TestOnly* hooks may only be called from tests/",
         check_testonly_call),
    Rule("CON-TESTONLY-REF", "error", "contracts",
         "TestOnly symbols referenced only from their own TU and tests/",
         check_testonly_ref, scope="tree"),
    Rule("CON-GUARD", "error", "contracts",
         "headers use #ifndef UOLAP_<PATH>_H_ guards", check_guard),
    Rule("CON-USING-NS", "error", "contracts",
         "no file-scope using-directives in headers", check_using_ns),
    Rule("CON-INCLUDE-ORDER", "warning", "contracts",
         "a .cc includes its own header first", check_include_order),
    Rule("CON-STORAGE", "error", "contracts",
         "charge memory through Core/ColumnView, not raw MemorySystem",
         check_storage),
    Rule("CON-STATUS-DISCARD", "error", "contracts",
         "dispatch-surface Run/Get call sites must consume the Status "
         "channel", check_status_discard),
    Rule("CON-IO-CHECKED", "error", "contracts",
         "persistence-surface write/flush/rename results must be "
         "consumed", check_io_checked),
]
