#include "engine/engine.h"

#include "common/macros.h"

namespace uolap::engine {

Q9Result OlapEngine::Q9(Workers&) const {
  UOLAP_CHECK_MSG(false,
                  "Q9 is only implemented by the high-performance engines");
  return Q9Result{};
}

Q18Result OlapEngine::Q18(Workers&) const {
  UOLAP_CHECK_MSG(false,
                  "Q18 is only implemented by the high-performance engines");
  return Q18Result{};
}

}  // namespace uolap::engine
