// Typer's fused scan loops: the projection and selection micro-benchmarks.

#include "common/macros.h"
#include "core/calibration.h"
#include "engines/typer/typer_engine.h"
#include "storage/column_view.h"

namespace uolap::typer {

using core::InstrMix;
using engine::PartitionRange;
using engine::RowRange;
using engine::Workers;
using storage::ColumnView;
using tpch::Money;

namespace {

// Per-tuple loop-control overhead of a 4x-unrolled compiled loop:
// 0.25 back-edge branches and ~0.5 ALU (compare + advance). Accounted in
// batches of 4 tuples to keep integer arithmetic exact.
constexpr uint64_t kUnroll = 4;

}  // namespace

Money TyperEngine::Projection(Workers& w, int degree) const {
  UOLAP_CHECK(degree >= 1 && degree <= 4);
  const auto& l = db_.lineitem;
  const size_t n = l.size();

  Money total = 0;
  for (size_t t = 0; t < w.count(); ++t) {
    core::Core& core = *w.cores[t];
    const RowRange r = PartitionRange(n, t, w.count());
    core.SetCodeRegion({"typer/projection", 1024});
    core.SetMlpHint(core::kMlpDefault);

    ColumnView<Money> ep(l.extendedprice, &core);
    ColumnView<int64_t> disc(l.discount, &core);
    ColumnView<int64_t> tax(l.tax, &core);
    ColumnView<int64_t> qty(l.quantity, &core);

    Money acc = 0;
    for (size_t i = r.begin; i < r.end; ++i) {
      Money v = ep.Get(i);
      if (degree >= 2) v += disc.Get(i);
      if (degree >= 3) v += tax.Get(i);
      if (degree >= 4) v += qty.Get(i);
      acc += v;
    }
    total += acc;

    // Per tuple: `degree` adds folded as a tree (ALU) feeding one serial
    // accumulator add (1-cycle chain), plus unrolled loop control.
    InstrMix per4;
    per4.alu = static_cast<uint64_t>(degree) * kUnroll + 2;
    per4.branch = 1;
    per4.chain_cycles = kUnroll;
    core.RetireN(per4, r.size() / kUnroll);
    InstrMix tail;
    tail.alu = static_cast<uint64_t>(degree) + 1;
    tail.branch = 1;
    tail.chain_cycles = 1;
    core.RetireN(tail, r.size() % kUnroll);
  }
  return total;
}

Money TyperEngine::Selection(Workers& w,
                             const engine::SelectionParams& p) const {
  const auto& l = db_.lineitem;
  const size_t n = l.size();

  Money total = 0;
  for (size_t t = 0; t < w.count(); ++t) {
    core::Core& core = *w.cores[t];
    const RowRange r = PartitionRange(n, t, w.count());
    core.SetCodeRegion({p.predicated ? "typer/selection-predicated"
                                     : "typer/selection-branched",
                        1280});
    core.SetMlpHint(core::kMlpDefault);

    ColumnView<tpch::Date> ship(l.shipdate, &core);
    ColumnView<tpch::Date> commit(l.commitdate, &core);
    ColumnView<tpch::Date> receipt(l.receiptdate, &core);
    ColumnView<Money> ep(l.extendedprice, &core);
    ColumnView<int64_t> disc(l.discount, &core);
    ColumnView<int64_t> tax(l.tax, &core);
    ColumnView<int64_t> qty(l.quantity, &core);

    Money acc = 0;
    uint64_t passes = 0;
    if (!p.predicated) {
      // Branched, compiled: all three predicates evaluated with bitwise
      // `&` into ONE branch, so the predictor faces the combined
      // selectivity (s^3).
      for (size_t i = r.begin; i < r.end; ++i) {
        const bool pass = (ship.Get(i) < p.ship_cut) &
                          (commit.Get(i) < p.commit_cut) &
                          (receipt.Get(i) < p.receipt_cut);
        core.Branch(engine::branch_site::kSelectionCombined, pass);
        if (pass) {
          acc += ep.Get(i) + disc.Get(i) + tax.Get(i) + qty.Get(i);
          ++passes;
        }
      }
      // Per tuple: 3 compares + 2 ands + loop control; per passing tuple:
      // 4 adds (tree) + serial accumulator add.
      InstrMix per_tuple;
      per_tuple.alu = 5 + 1;  // predicates + unrolled loop control share
      core.RetireN(per_tuple, r.size());
      InstrMix loop4;
      loop4.branch = 1;
      core.RetireN(loop4, r.size() / kUnroll);
      InstrMix per_pass;
      per_pass.alu = 4;
      per_pass.chain_cycles = 1;
      core.RetireN(per_pass, passes);
    } else {
      // Predicated, branch-free: the projection is computed for EVERY
      // tuple and multiplied by the 0/1 predicate mask (Section 7's
      // trade-off: more computation, no branches).
      for (size_t i = r.begin; i < r.end; ++i) {
        const int64_t mask = static_cast<int64_t>(
            (ship.Get(i) < p.ship_cut) & (commit.Get(i) < p.commit_cut) &
            (receipt.Get(i) < p.receipt_cut));
        acc += mask * (ep.Get(i) + disc.Get(i) + tax.Get(i) + qty.Get(i));
        passes += static_cast<uint64_t>(mask);
      }
      InstrMix per_tuple;
      per_tuple.alu = 5 + 4 + 1 + 1;  // predicates + adds + mask counting
      per_tuple.mul = 1;              // mask multiply
      per_tuple.chain_cycles = 1;
      core.RetireN(per_tuple, r.size());
      InstrMix loop4;
      loop4.branch = 1;
      core.RetireN(loop4, r.size() / kUnroll);
    }
    total += acc;
  }
  return total;
}

}  // namespace uolap::typer
