#ifndef UOLAP_HARNESS_CONTEXT_H_
#define UOLAP_HARNESS_CONTEXT_H_

#include <memory>
#include <string>

#include "common/flags.h"
#include "common/table_printer.h"
#include "core/machine.h"
#include "engines/colstore/colstore_engine.h"
#include "engines/rowstore/rowstore_engine.h"
#include "engines/tectorwise/tw_engine.h"
#include "engines/typer/typer_engine.h"
#include "tpch/dbgen.h"

namespace uolap::harness {

/// Shared setup of every bench binary: flags, database, machine config,
/// lazily constructed engines, and output plumbing.
///
/// Flags understood by all benches:
///   --sf=<double>     TPC-H scale factor (default: per-bench)
///   --quick           tiny scale factor for smoke runs
///   --seed=<int>      generator seed (default 42)
///   --machine=<name>  "broadwell" (default) or "skylake"
///   --csv=<path>      also append every table as CSV to <path>
class BenchContext {
 public:
  /// Parses flags and generates the database. `default_sf` is the bench's
  /// documented default scale factor.
  BenchContext(int argc, char** argv, double default_sf);

  const tpch::Database& db() const { return *db_; }
  const core::MachineConfig& machine() const { return machine_; }
  double scale_factor() const { return sf_; }
  bool quick() const { return quick_; }

  typer::TyperEngine& typer();
  tectorwise::TectorwiseEngine& tectorwise();
  tectorwise::TectorwiseEngine& tectorwise_simd();
  rowstore::RowstoreEngine& rowstore();
  colstore::ColstoreEngine& colstore();

  /// Prints the table to stdout (ASCII) and appends CSV if --csv given.
  void Emit(const TablePrinter& table);

  /// Prints the standard bench banner (scale factor, machine, seed).
  void PrintHeader(const std::string& bench_name) const;

 private:
  FlagSet flags_;
  double sf_ = 1.0;
  bool quick_ = false;
  uint64_t seed_ = 42;
  core::MachineConfig machine_;
  std::string csv_path_;
  std::unique_ptr<tpch::Database> db_;
  std::unique_ptr<typer::TyperEngine> typer_;
  std::unique_ptr<tectorwise::TectorwiseEngine> tw_;
  std::unique_ptr<tectorwise::TectorwiseEngine> tw_simd_;
  std::unique_ptr<rowstore::RowstoreEngine> rowstore_;
  std::unique_ptr<colstore::ColstoreEngine> colstore_;
};

}  // namespace uolap::harness

#endif  // UOLAP_HARNESS_CONTEXT_H_
