#include "common/flags.h"

#include <cstdlib>
#include <string_view>

namespace uolap {

Status FlagSet::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (arg.rfind("--", 0) != 0) {
      positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    const size_t eq = arg.find('=');
    std::string name(arg.substr(0, eq));
    if (name.empty()) {
      return Status::InvalidArgument("empty flag name in '" +
                                     std::string(argv[i]) + "'");
    }
    if (eq == std::string_view::npos) {
      values_[name] = "true";
    } else {
      values_[name] = std::string(arg.substr(eq + 1));
    }
  }
  return Status::OK();
}

bool FlagSet::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string FlagSet::GetString(const std::string& name,
                               const std::string& default_value) const {
  auto it = values_.find(name);
  return it == values_.end() ? default_value : it->second;
}

double FlagSet::GetDouble(const std::string& name,
                          double default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  return std::strtod(it->second.c_str(), nullptr);
}

int64_t FlagSet::GetInt(const std::string& name, int64_t default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

bool FlagSet::GetBool(const std::string& name, bool default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  const std::string& v = it->second;
  return v == "1" || v == "true" || v == "yes" || v == "on";
}

}  // namespace uolap
