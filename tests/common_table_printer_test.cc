#include "common/table_printer.h"

#include <gtest/gtest.h>

namespace uolap {
namespace {

TEST(TablePrinterTest, AsciiContainsTitleHeaderAndCells) {
  TablePrinter t("Figure X: demo");
  t.SetHeader({"system", "stall", "retiring"});
  t.AddRow({"Typer", "75.0%", "25.0%"});
  t.AddRow({"Tectorwise", "60.0%", "40.0%"});
  const std::string out = t.ToAscii();
  EXPECT_NE(out.find("Figure X: demo"), std::string::npos);
  EXPECT_NE(out.find("system"), std::string::npos);
  EXPECT_NE(out.find("Typer"), std::string::npos);
  EXPECT_NE(out.find("75.0%"), std::string::npos);
  EXPECT_NE(out.find("Tectorwise"), std::string::npos);
}

TEST(TablePrinterTest, CsvRoundsTrips) {
  TablePrinter t("t");
  t.SetHeader({"a", "b"});
  t.AddRow({"1", "2"});
  EXPECT_EQ(t.ToCsv(), "a,b\n1,2\n");
}

TEST(TablePrinterTest, FmtAndPct) {
  EXPECT_EQ(TablePrinter::Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Fmt(10.0, 0), "10");
  EXPECT_EQ(TablePrinter::Pct(0.756, 1), "75.6%");
}

TEST(TablePrinterTest, CountsRows) {
  TablePrinter t("t");
  EXPECT_EQ(t.num_rows(), 0u);
  t.AddRow({"x"});
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(TablePrinterDeathTest, MismatchedRowWidthAborts) {
  TablePrinter t("t");
  t.SetHeader({"a", "b"});
  EXPECT_DEATH(t.AddRow({"only-one"}), "row width");
}

}  // namespace
}  // namespace uolap
