# Empty compiler generated dependencies file for core_topdown_test.
# This may be replaced when dependencies are built.
