// Property: query RESULTS never depend on the simulated machine. The
// simulator is an observer — changing the machine config, prefetcher
// settings, SIMD mode or thread count must change only the profile,
// never the answer.

#include <gtest/gtest.h>

#include "core/machine.h"
#include "engines/tectorwise/tw_engine.h"
#include "engines/typer/typer_engine.h"
#include "tpch/dbgen.h"

namespace uolap {
namespace {

using core::Machine;
using core::MachineConfig;
using engine::Workers;

class InvarianceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    tpch::DbGen gen(42);
    db_ = new tpch::Database(std::move(gen.Generate(0.01)).value());
    typer_ = new typer::TyperEngine(*db_);
    tw_ = new tectorwise::TectorwiseEngine(*db_);
  }

  template <typename Fn>
  static auto Run(const MachineConfig& cfg, int threads, Fn&& fn) {
    Machine machine(cfg, static_cast<uint32_t>(threads));
    std::vector<core::Core*> cores;
    for (int i = 0; i < threads; ++i) cores.push_back(&machine.core(i));
    Workers w(cores);
    return fn(w);
  }

  static std::vector<MachineConfig> Configs() {
    MachineConfig no_pf = MachineConfig::Broadwell();
    no_pf.prefetchers = core::PrefetcherConfig::AllDisabled();
    MachineConfig tiny = MachineConfig::Broadwell();
    tiny.l1d.size_bytes = 4 * 1024;
    tiny.l2.size_bytes = 32 * 1024;
    tiny.l3.size_bytes = 256 * 1024;
    return {MachineConfig::Broadwell(), MachineConfig::Skylake(), no_pf,
            tiny};
  }

  static tpch::Database* db_;
  static typer::TyperEngine* typer_;
  static tectorwise::TectorwiseEngine* tw_;
};
tpch::Database* InvarianceTest::db_ = nullptr;
typer::TyperEngine* InvarianceTest::typer_ = nullptr;
tectorwise::TectorwiseEngine* InvarianceTest::tw_ = nullptr;

TEST_F(InvarianceTest, ProjectionInvariantAcrossMachines) {
  const auto base = Run(MachineConfig::Broadwell(), 1, [&](Workers& w) {
    return typer_->Projection(w, 4);
  });
  for (const auto& cfg : Configs()) {
    for (int threads : {1, 3}) {
      EXPECT_EQ(Run(cfg, threads,
                    [&](Workers& w) { return typer_->Projection(w, 4); }),
                base)
          << cfg.name << " x" << threads;
    }
  }
}

TEST_F(InvarianceTest, Q9InvariantAcrossMachines) {
  const auto base = Run(MachineConfig::Broadwell(), 1,
                        [&](Workers& w) { return typer_->Q9(w); });
  for (const auto& cfg : Configs()) {
    EXPECT_EQ(Run(cfg, 1, [&](Workers& w) { return typer_->Q9(w); }), base)
        << cfg.name;
  }
}

TEST_F(InvarianceTest, TectorwiseInvariantAcrossSimdAndMachines) {
  tectorwise::TectorwiseEngine simd(*db_, /*simd=*/true);
  const auto params = engine::MakeSelectionParams(*db_, 0.5, true);
  const auto base = Run(MachineConfig::Broadwell(), 1, [&](Workers& w) {
    return tw_->Selection(w, params);
  });
  for (const auto& cfg : Configs()) {
    EXPECT_EQ(Run(cfg, 1,
                  [&](Workers& w) { return simd.Selection(w, params); }),
              base)
        << cfg.name;
  }
}

TEST_F(InvarianceTest, Q18InvariantAcrossThreadCounts) {
  const auto base = Run(MachineConfig::Broadwell(), 1,
                        [&](Workers& w) { return typer_->Q18(w); });
  for (int threads : {2, 5, 14}) {
    EXPECT_EQ(Run(MachineConfig::Broadwell(), threads,
                  [&](Workers& w) { return typer_->Q18(w); }),
              base)
        << threads << " threads";
  }
}

TEST_F(InvarianceTest, ProfilesDifferEvenThoughResultsMatch) {
  // Sanity: the machine DOES change the profile (otherwise the invariance
  // test would be vacuous).
  auto cycles = [&](const MachineConfig& cfg) {
    Machine machine(cfg, 1);
    Workers w(machine.core(0));
    typer_->Projection(w, 4);
    machine.FinalizeAll();
    return machine.AnalyzeCore(0).total_cycles;
  };
  MachineConfig no_pf = MachineConfig::Broadwell();
  no_pf.prefetchers = core::PrefetcherConfig::AllDisabled();
  EXPECT_GT(cycles(no_pf), cycles(MachineConfig::Broadwell()) * 1.5);
}

}  // namespace
}  // namespace uolap
