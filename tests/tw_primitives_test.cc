// Unit tests for the Tectorwise primitive library: every primitive's
// result must be correct, SIMD flavours must be result-identical to the
// scalar ones, and the instrumentation must actually fire.

#include "engines/tectorwise/primitives.h"

#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/config.h"

namespace uolap::tectorwise {
namespace {

core::Core MakeCore() { return core::Core(core::MachineConfig::Broadwell()); }

class PrimitivesTest : public ::testing::TestWithParam<bool> {
 protected:
  bool simd() const { return GetParam(); }
};

TEST_P(PrimitivesTest, MapAddAddsElementwise) {
  core::Core core = MakeCore();
  VecCtx ctx{&core, simd()};
  std::vector<int64_t> a = {1, 2, 3, 4}, b = {10, 20, 30, 40}, out(4);
  MapAdd(ctx, out.data(), a.data(), b.data(), 4);
  EXPECT_EQ(out, (std::vector<int64_t>{11, 22, 33, 44}));
}

TEST_P(PrimitivesTest, MapAddMixedWidths) {
  core::Core core = MakeCore();
  VecCtx ctx{&core, simd()};
  std::vector<int64_t> a = {100, 200};
  std::vector<int32_t> b = {1, 2};
  std::vector<int64_t> out(2);
  MapAdd(ctx, out.data(), a.data(), b.data(), 2);
  EXPECT_EQ(out, (std::vector<int64_t>{101, 202}));
}

TEST_P(PrimitivesTest, SumColumn) {
  core::Core core = MakeCore();
  VecCtx ctx{&core, simd()};
  std::vector<int64_t> a(100);
  std::iota(a.begin(), a.end(), 1);
  EXPECT_EQ(SumColumn(ctx, a.data(), a.size()), 5050);
}

TEST_P(PrimitivesTest, SelLessSelectsQualifyingIndices) {
  core::Core core = MakeCore();
  VecCtx ctx{&core, false};  // branched variant is scalar-only semantics
  std::vector<int32_t> col = {5, 1, 9, 2, 7};
  std::vector<uint32_t> sel(5);
  const size_t m = SelLess(ctx, 1, col.data(), 6, sel.data(), col.size());
  ASSERT_EQ(m, 3u);
  EXPECT_EQ(sel[0], 0u);
  EXPECT_EQ(sel[1], 1u);
  EXPECT_EQ(sel[2], 3u);
}

TEST_P(PrimitivesTest, SelLessPredicatedMatchesBranched) {
  core::Core core_a = MakeCore();
  core::Core core_b = MakeCore();
  VecCtx branched{&core_a, false};
  VecCtx predicated{&core_b, simd()};
  Rng rng(3);
  std::vector<int32_t> col(kVecSize);
  for (auto& v : col) v = static_cast<int32_t>(rng.Uniform(0, 100));
  std::vector<uint32_t> sel_a(kVecSize), sel_b(kVecSize);
  const size_t ma = SelLess(branched, 1, col.data(), 50, sel_a.data(),
                            col.size());
  const size_t mb = SelLessPredicated(predicated, col.data(), 50,
                                      sel_b.data(), col.size());
  ASSERT_EQ(ma, mb);
  for (size_t i = 0; i < ma; ++i) EXPECT_EQ(sel_a[i], sel_b[i]);
}

TEST_P(PrimitivesTest, SelChainOnSelComposes) {
  core::Core core = MakeCore();
  VecCtx ctx{&core, false};
  std::vector<int32_t> c1 = {1, 5, 1, 5, 1, 5};
  std::vector<int32_t> c2 = {9, 1, 1, 9, 9, 1};
  std::vector<uint32_t> s1(6), s2(6);
  const size_t m1 = SelLess(ctx, 1, c1.data(), 3, s1.data(), 6);  // 0,2,4
  ASSERT_EQ(m1, 3u);
  const size_t m2 =
      SelLessOnSel(ctx, 2, c2.data(), 3, s1.data(), m1, s2.data());
  ASSERT_EQ(m2, 1u);  // only index 2 has both < 3
  EXPECT_EQ(s2[0], 2u);
}

TEST_P(PrimitivesTest, MapAddSelGathers) {
  core::Core core = MakeCore();
  VecCtx ctx{&core, simd()};
  std::vector<int64_t> a = {1, 2, 3, 4}, b = {10, 20, 30, 40}, out(2);
  std::vector<uint32_t> sel = {1, 3};
  MapAddSel(ctx, out.data(), a.data(), b.data(), sel.data(), 2);
  EXPECT_EQ(out, (std::vector<int64_t>{22, 44}));
}

TEST_P(PrimitivesTest, MapAddDenseGather) {
  core::Core core = MakeCore();
  VecCtx ctx{&core, simd()};
  std::vector<int64_t> dense = {100, 200};
  std::vector<int64_t> col = {1, 2, 3, 4};
  std::vector<uint32_t> sel = {0, 3};
  std::vector<int64_t> out(2);
  MapAddDenseGather(ctx, out.data(), dense.data(), col.data(), sel.data(),
                    2);
  EXPECT_EQ(out, (std::vector<int64_t>{101, 204}));
}

TEST_P(PrimitivesTest, HtProbeSelFindsMatches) {
  core::Core core = MakeCore();
  VecCtx ctx{&core, simd()};
  engine::JoinHashTable ht(16);
  for (int64_t k = 0; k < 16; ++k) ht.Insert(core, k * 2, k * 100);
  std::vector<int64_t> keys = {0, 1, 4, 31, 30};
  std::vector<uint32_t> sel(5);
  std::vector<int64_t> payloads(5);
  const size_t m = HtProbeSel(ctx, 16, ht, keys.data(), 0, nullptr,
                              keys.size(), sel.data(), payloads.data());
  ASSERT_EQ(m, 3u);  // keys 0, 4, 30 are present
  EXPECT_EQ(sel[0], 0u);
  EXPECT_EQ(payloads[0], 0);
  EXPECT_EQ(sel[1], 2u);
  EXPECT_EQ(payloads[1], 200);
  EXPECT_EQ(sel[2], 4u);
  EXPECT_EQ(payloads[2], 1500);
}

TEST_P(PrimitivesTest, HtProbeSelThroughSelectionVector) {
  core::Core core = MakeCore();
  VecCtx ctx{&core, simd()};
  engine::JoinHashTable ht(4);
  ht.Insert(core, 7, 70);
  std::vector<int64_t> keys = {1, 7, 7, 2};
  std::vector<uint32_t> sel_in = {1, 3};
  std::vector<uint32_t> sel_out(2);
  std::vector<int64_t> payloads(2);
  const size_t m = HtProbeSel(ctx, 32, ht, keys.data(), 0, sel_in.data(),
                              sel_in.size(), sel_out.data(),
                              payloads.data());
  ASSERT_EQ(m, 1u);
  EXPECT_EQ(sel_out[0], 1u);
  EXPECT_EQ(payloads[0], 70);
}

TEST(PrimitivesInstrumentationTest, SimdRetiresFewerInstructions) {
  std::vector<int64_t> a(kVecSize, 1), b(kVecSize, 2), out(kVecSize);
  auto instr = [&](bool simd) {
    core::Core core = MakeCore();
    VecCtx ctx{&core, simd};
    for (int rep = 0; rep < 16; ++rep) {
      MapAdd(ctx, out.data(), a.data(), b.data(), kVecSize);
    }
    core.Finalize();
    return core.counters().mix.TotalInstructions();
  };
  const auto scalar = instr(false);
  const auto simd = instr(true);
  // ~8 lanes per vector op: a large instruction reduction (paper: the
  // retiring-time cut of Fig. 22).
  EXPECT_LT(static_cast<double>(simd), 0.4 * static_cast<double>(scalar));
}

TEST(PrimitivesInstrumentationTest, SimdKeepsMemoryTraffic) {
  std::vector<int64_t> big(1 << 20, 1);
  auto dram_lines = [&](bool simd) {
    core::Core core = MakeCore();
    VecCtx ctx{&core, simd};
    int64_t sink = 0;
    for (size_t base = 0; base < big.size(); base += kVecSize) {
      sink += SumColumn(ctx, big.data() + base, kVecSize);
    }
    core.Finalize();
    EXPECT_GT(sink, 0);
    return core.counters().mem.dram_lines;
  };
  const auto scalar = dram_lines(false);
  const auto simd = dram_lines(true);
  // Same data must move regardless of instruction encoding.
  EXPECT_NEAR(static_cast<double>(simd), static_cast<double>(scalar),
              static_cast<double>(scalar) * 0.02);
}

INSTANTIATE_TEST_SUITE_P(ScalarAndSimd, PrimitivesTest,
                         ::testing::Values(false, true));

}  // namespace
}  // namespace uolap::tectorwise
