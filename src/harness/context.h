#ifndef UOLAP_HARNESS_CONTEXT_H_
#define UOLAP_HARNESS_CONTEXT_H_

#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "common/flags.h"
#include "common/table_printer.h"
#include "core/machine.h"
#include "engine/registry.h"
#include "harness/profile.h"
#include "obs/record.h"
#include "tpch/dbgen.h"

namespace uolap::harness {

/// Shared setup of every bench binary: flags, database, machine config,
/// lazily constructed engines, and output plumbing.
///
/// Flags understood by all benches:
///   --sf=<double>     TPC-H scale factor (default: per-bench)
///   --quick           tiny scale factor for smoke runs
///   --seed=<int>      generator seed (default 42)
///   --machine=<name>  "broadwell" (default) or "skylake"
///   --csv=<path>      also append every table as CSV to <path>
///   --json=<path>     write the versioned profile JSON of every recorded
///                     run (regions, timelines, Top-Down breakdowns)
///   --trace=<path>    write a Chrome trace-event file (load in Perfetto
///                     or chrome://tracing)
///   --metrics=<path>  write the metrics-registry snapshot taken at flush
///                     as Prometheus text exposition
///   --sample-every=<n>  counter-timeline sampling interval in retired
///                     instructions (default: 1M when --json/--trace is
///                     given, otherwise off; 0 disables)
///   --validate        run the model-invariant audit after every profiled
///                     run (see audit/validation.h); violations print to
///                     stderr, land in the profile JSON, and abort. Also
///                     on by default when built with -DUOLAP_VALIDATE=ON.
///   --stable-json     zero the host wall-clock field in the profile JSON
///                     so two runs of the same bench produce byte-identical
///                     files (the CI determinism gate byte-diffs them)
class BenchContext {
 public:
  /// Parses flags and generates the database. `default_sf` is the bench's
  /// documented default scale factor.
  BenchContext(int argc, char** argv, double default_sf);

  /// Writes any pending --json/--trace outputs (idempotent; also called
  /// here if the bench never calls FlushOutputs itself).
  ~BenchContext();

  const tpch::Database& db() const { return *db_; }
  const core::MachineConfig& machine() const { return machine_; }
  double scale_factor() const { return sf_; }
  bool quick() const { return quick_; }
  uint64_t seed() const { return seed_; }
  bool stable_json() const { return stable_json_; }
  /// The parsed flag set; drivers with extra flags (e.g. uolap_serve's
  /// --cores/--queries) read them from here.
  const FlagSet& flags() const { return flags_; }

  /// The engine registry over this context's database, pre-loaded with the
  /// built-in keys ("typer", "tectorwise", "tectorwise+simd", "rowstore",
  /// "colstore"); see harness/engines.h.
  engine::EngineRegistry& engines() { return *engines_; }
  /// Shorthand for engines().Get(name).value(): the cached engine for a
  /// registry key (constructed on first use). Benches name keys they know
  /// are registered, so an unknown key CHECK-fails loudly here; fallible
  /// callers use engines().Get(name) and handle the NotFound Status.
  /// Engine-specific entry points need a static_cast at the call site,
  /// e.g. static_cast<typer::TyperEngine&>(ctx.engine("typer")).
  engine::OlapEngine& engine(const std::string& name) {
    return *engines_->Get(name).value();
  }

  /// Prints the table to stdout (ASCII) and appends CSV if --csv given.
  void Emit(const TablePrinter& table);

  /// Prints the standard bench banner (scale factor, machine, seed) and
  /// names the recorded session after the bench.
  void PrintHeader(const std::string& bench_name);

  // --- recorded profiling ---------------------------------------------
  // These wrap harness::ProfileSingleObs/ProfileMultiObs: every run is
  // recorded into the session (for --json/--trace) and the conventional
  // analysis result is returned, so call sites read like the plain
  // ProfileSingle/ProfileMulti they replace. Thread-safe: sweep drivers
  // may profile concurrently (runs are sorted by label at export).

  /// Single-core profile on the context's machine.
  template <typename Fn>
  core::ProfileResult Profile(const std::string& label, Fn&& fn) {
    return Profile(label, machine_, std::forward<Fn>(fn));
  }

  /// Single-core profile on an explicit machine config (what-if variants).
  template <typename Fn>
  core::ProfileResult Profile(const std::string& label,
                              const core::MachineConfig& cfg, Fn&& fn) {
    obs::RunRecord run =
        ProfileSingleObs(cfg, obs_options(), label, std::forward<Fn>(fn));
    core::ProfileResult result = run.cores[0].whole;
    RecordRun(std::move(run));
    return result;
  }

  /// Multi-core profile on the context's machine (threaded executor).
  template <typename Fn>
  core::MultiCoreResult ProfileMulti(const std::string& label, int threads,
                                     Fn&& fn) {
    auto [multi, run] = ProfileMultiObs(machine_, threads, obs_options(),
                                        label, std::forward<Fn>(fn));
    RecordRun(std::move(run));
    return multi;
  }

  /// The most recently recorded run (regions, timeline, whole-run
  /// analysis). Valid until the next Profile/ProfileMulti call.
  const obs::RunRecord& last_run() const { return last_run_; }

  ObsOptions obs_options() const {
    return ObsOptions{sample_interval_};
  }
  /// True when --json, --trace, or --metrics was given.
  bool exporting() const {
    return !json_path_.empty() || !trace_path_.empty() ||
           !metrics_path_.empty();
  }

  /// Writes the --json/--trace files from the runs recorded so far.
  /// Idempotent per state; the destructor calls it as a backstop.
  void FlushOutputs();

  /// Records an externally produced run into the session (e.g. the
  /// serving runtime's per-class profiles). Thread-safe.
  void RecordRun(obs::RunRecord run);

  /// Records a serving run's statistics; exported as the profile JSON's
  /// "server" block.
  void RecordServer(obs::ServerRecord server);

 private:
  FlagSet flags_;
  double sf_ = 1.0;
  bool quick_ = false;
  uint64_t seed_ = 42;
  core::MachineConfig machine_;
  std::string csv_path_;
  std::string json_path_;
  std::string trace_path_;
  std::string metrics_path_;
  uint64_t sample_interval_ = 0;
  bool stable_json_ = false;
  std::chrono::steady_clock::time_point start_time_;
  mutable std::mutex session_mu_;
  obs::ProfileSession session_;
  obs::RunRecord last_run_;
  bool flushed_ = false;
  std::unique_ptr<tpch::Database> db_;
  std::unique_ptr<engine::EngineRegistry> engines_;
};

}  // namespace uolap::harness

#endif  // UOLAP_HARNESS_CONTEXT_H_
