// Compares the four OLAP systems of the paper on the same workloads:
// a commercial row store (DBMS R), its column-store extension (DBMS C),
// a compiled engine (Typer) and a vectorized engine (Tectorwise).
//
// This is the paper's Section 3/5 story in one program — and the tour of
// the engine-neutral dispatch API: engines are resolved by key from an
// engine::EngineRegistry, and every workload is an engine::QuerySpec
// executed through OlapEngine::Run, so adding an engine or a workload
// never touches this driver's loop.
//
//   ./build/examples/engine_comparison [--sf=0.1]

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/table_printer.h"
#include "core/machine.h"
#include "engine/query_spec.h"
#include "engine/registry.h"
#include "engines/colstore/colstore_engine.h"
#include "engines/rowstore/rowstore_engine.h"
#include "engines/tectorwise/tw_engine.h"
#include "engines/typer/typer_engine.h"
#include "tpch/dbgen.h"

int main(int argc, char** argv) {
  using namespace uolap;

  FlagSet flags;
  UOLAP_CHECK(flags.Parse(argc, argv).ok());
  const double sf = flags.GetDouble("sf", 0.1);

  tpch::DbGen generator(42);
  tpch::Database db = std::move(generator.Generate(sf)).value();

  engine::EngineRegistry registry(db);
  registry.Register("rowstore", [](const tpch::Database& d) {
    return std::make_unique<rowstore::RowstoreEngine>(d);
  });
  registry.Register("colstore", [](const tpch::Database& d) {
    return std::make_unique<colstore::ColstoreEngine>(d);
  });
  registry.Register("typer", [](const tpch::Database& d) {
    return std::make_unique<typer::TyperEngine>(d);
  });
  registry.Register("tectorwise", [](const tpch::Database& d) {
    return std::make_unique<tectorwise::TectorwiseEngine>(d);
  });
  const std::vector<std::string> keys = {"rowstore", "colstore", "typer",
                                         "tectorwise"};

  auto profile = [&](engine::OlapEngine& e, const engine::QuerySpec& spec) {
    core::Machine machine(core::MachineConfig::Broadwell(), 1);
    engine::Workers w(machine.core(0));
    e.Run(spec, w).value();  // the answer is discarded, not the Status
    machine.FinalizeAll();
    return machine.AnalyzeCore(0);
  };

  auto compare = [&](const char* title, const engine::QuerySpec& spec) {
    TablePrinter t(title);
    t.SetHeader({"system", "time (ms)", "instructions", "IPC", "stall %",
                 "GB/s"});
    double base = 0;
    for (const std::string& key : keys) {
      engine::OlapEngine& e = *registry.Get(key).value();
      const core::ProfileResult r = profile(e, spec);
      if (key == "typer") base = r.time_ms;
      t.AddRow({e.name(), TablePrinter::Fmt(r.time_ms, 1),
                std::to_string(r.instructions),
                TablePrinter::Fmt(r.ipc, 2),
                TablePrinter::Pct(r.cycles.StallRatio(), 0),
                TablePrinter::Fmt(r.bandwidth_gbps, 1)});
    }
    std::printf("%s(Typer baseline: %.1f ms)\n\n", t.ToAscii().c_str(),
                base);
  };

  compare("Projection degree 4 (SUM over four lineitem columns)",
          engine::QuerySpec::Projection(4));
  compare("TPC-H Q1 (low-cardinality group-by)", engine::QuerySpec::Q1());
  compare("Large join (lineitem x orders)",
          engine::QuerySpec::Join(engine::JoinSize::kLarge));
  return 0;
}
